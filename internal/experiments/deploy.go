// Package experiments defines one entry point per table and figure of
// the paper's evaluation (§V), plus the ablations listed in DESIGN.md.
// Each experiment builds a deployment (dataset, federation, attack),
// trains it while recording history, runs the unlearning methods, and
// returns typed result rows that cmd/fuiov renders and the benchmark
// harness regenerates.
package experiments

import (
	"fmt"

	"fuiov/internal/attack"
	"fuiov/internal/baselines"
	"fuiov/internal/dataset"
	"fuiov/internal/faults"
	"fuiov/internal/fl"
	"fuiov/internal/history"
	"fuiov/internal/nn"
	"fuiov/internal/rng"
	"fuiov/internal/telemetry"
)

// DatasetKind selects the synthetic task.
type DatasetKind int

const (
	// Digits is the MNIST stand-in.
	Digits DatasetKind = iota + 1
	// Traffic is the GTSRB stand-in.
	Traffic
)

// String names the dataset like the paper's tables.
func (k DatasetKind) String() string {
	switch k {
	case Digits:
		return "MNIST(synth)"
	case Traffic:
		return "GTSRB(synth)"
	default:
		return fmt.Sprintf("DatasetKind(%d)", int(k))
	}
}

// AttackKind selects the poisoning attack mounted by malicious
// clients.
type AttackKind int

const (
	// NoAttack deploys only benign clients.
	NoAttack AttackKind = iota + 1
	// LabelFlipAttack flips class 7 to 1 (paper §V-A2).
	LabelFlipAttack
	// BackdoorAttack stamps a 3×3 trigger targeting class 2.
	BackdoorAttack
)

// String names the attack.
func (k AttackKind) String() string {
	switch k {
	case NoAttack:
		return "none"
	case LabelFlipAttack:
		return "labelflip"
	case BackdoorAttack:
		return "backdoor"
	default:
		return fmt.Sprintf("AttackKind(%d)", int(k))
	}
}

// Scale bundles the size knobs so tests can run a miniature of every
// experiment while the benchmark harness runs the paper-scale one.
type Scale struct {
	// Clients is n (paper: 100).
	Clients int
	// Rounds is T (paper: 100).
	Rounds int
	// Samples is the total synthetic dataset size.
	Samples int
	// BatchSize caps client mini-batches (0 = full shard; paper: 128).
	BatchSize int
	// UseCNN selects the paper's CNN architectures; false uses an MLP
	// (faster, used by CI-scale tests).
	UseCNN bool
	// Hidden is the MLP hidden width when UseCNN is false.
	Hidden int
	// LearningRate is η for training and recovery.
	LearningRate float64
	// TrafficLRFactor scales the learning rate for the Traffic task,
	// mirroring the paper's higher GTSRB rate (1e-3 vs MNIST's 1e-4).
	// 0 means 1 (no boost).
	TrafficLRFactor float64
	// MaliciousFraction is the share of clients that poison when an
	// attack is active (paper: 0.2).
	MaliciousFraction float64
	// ForgottenJoinRound is F for the forgotten/malicious clients
	// (paper: 2).
	ForgottenJoinRound int
	// Delta is the direction threshold δ (paper: 1e-6).
	Delta float64
	// PairSize is s (paper: 2).
	PairSize int
	// ClipThreshold is L (paper: 1).
	ClipThreshold float64
	// RefreshEvery is the pair refresh period (paper: 21).
	RefreshEvery int
	// FedRecoveryNoise is the Gaussian σ of the FedRecovery baseline,
	// set to the regime where the unlearned model is statistically
	// plausible as a retrain (Zhang et al.'s calibration costs several
	// accuracy points; this mirrors the gap reported in Table I).
	FedRecoveryNoise float64
	// Parallelism bounds concurrent client computations.
	Parallelism int
	// DirichletAlpha, when positive, partitions client shards with
	// label-skewed Dirichlet(alpha) sampling instead of IID — the
	// heterogeneous-vehicle setting (ablation A4). 0 selects IID.
	DirichletAlpha float64
	// Telemetry, when non-nil, is attached to every subsystem the
	// deployment wires (simulation, both history stores) and forwarded
	// into the unlearner and baseline configs, so one registry gathers
	// the whole experiment. Nil disables instrumentation.
	Telemetry *telemetry.Registry
	// FaultRate, when positive, injects seeded per-attempt client crash
	// faults with this probability during training and arms the
	// fault-tolerant round engine (bounded retries plus the Quorum
	// below), so experiments run under vehicle unreliability instead of
	// a perfectly available fleet. 0 keeps training fault-free.
	FaultRate float64
	// Quorum is the minimum fraction of scheduled clients that must
	// respond per round when FaultRate is active (0 = commit the round
	// regardless of how many respond).
	Quorum float64
	// SpillWindow, when positive, bounds the history store's resident
	// snapshot memory: models older than this many rounds spill to an
	// on-disk scratch file (history.WithSpill). Recovery results are
	// bit-identical with spilling on or off. 0 keeps everything in RAM.
	SpillWindow int
	// SpillDir is where the spill scratch file is created when
	// SpillWindow is active ("" = OS temp directory).
	SpillDir string
}

// PaperScale mirrors §V-A: 100 vehicles, 100 rounds, CNN models,
// s=2, δ=1e-6, refresh every 21 rounds, 20% malicious.
//
// Two hyperparameters are rescaled from the paper because our
// substrate's gradients are ~100× larger than real-MNIST CNN
// gradients (see EXPERIMENTS.md):
//
//   - Clip threshold: what governs recovery is the per-element step
//     cap η·L. The paper's regime is η·L = 1e-4; our substrate needs
//     η≈0.06 to train in 100 rounds, so L=0.05 keeps the cap in the
//     same effective regime (3e-3). The inverted-U dependence on L
//     (Fig. 2) is preserved with the optimum at the rescaled position.
//   - Direction threshold δ: the paper's δ=1e-6 sits just below their
//     gradient magnitudes; ours sit near 1e-1..1e-2, so δ=1e-2 plays
//     the same role (zeroing negligible elements without losing real
//     updates). The inverted-U dependence on δ (Fig. 3) is preserved.
func PaperScale() Scale {
	return Scale{
		Clients:            100,
		Rounds:             100,
		Samples:            6000,
		BatchSize:          128,
		UseCNN:             true,
		LearningRate:       0.06,
		TrafficLRFactor:    4,
		MaliciousFraction:  0.2,
		ForgottenJoinRound: 2,
		Delta:              1e-2,
		PairSize:           2,
		ClipThreshold:      0.05,
		RefreshEvery:       21,
		FedRecoveryNoise:   0.06,
	}
}

// CIScale is a miniature that preserves every code path while running
// in well under a second per experiment.
func CIScale() Scale {
	return Scale{
		Clients:            10,
		Rounds:             150,
		Samples:            900,
		BatchSize:          0,
		UseCNN:             false,
		Hidden:             24,
		LearningRate:       0.03,
		TrafficLRFactor:    4,
		MaliciousFraction:  0.2,
		ForgottenJoinRound: 2,
		Delta:              1e-2,
		PairSize:           2,
		ClipThreshold:      0.05,
		RefreshEvery:       21,
		FedRecoveryNoise:   0.02,
	}
}

// LRFor returns the effective learning rate for a dataset kind.
func (s Scale) LRFor(kind DatasetKind) float64 {
	if kind == Traffic && s.TrafficLRFactor > 0 {
		return s.LearningRate * s.TrafficLRFactor
	}
	return s.LearningRate
}

// Validate rejects unusable scales.
func (s Scale) Validate() error {
	if s.Clients <= 1 {
		return fmt.Errorf("experiments: need at least 2 clients, got %d", s.Clients)
	}
	if s.Rounds <= s.ForgottenJoinRound {
		return fmt.Errorf("experiments: rounds %d must exceed join round %d", s.Rounds, s.ForgottenJoinRound)
	}
	if s.Samples < 2*s.Clients {
		return fmt.Errorf("experiments: %d samples too few for %d clients", s.Samples, s.Clients)
	}
	if s.LearningRate <= 0 {
		return fmt.Errorf("experiments: learning rate %v", s.LearningRate)
	}
	if s.MaliciousFraction < 0 || s.MaliciousFraction >= 1 {
		return fmt.Errorf("experiments: malicious fraction %v", s.MaliciousFraction)
	}
	if s.ForgottenJoinRound < 0 {
		return fmt.Errorf("experiments: join round %d", s.ForgottenJoinRound)
	}
	if s.FaultRate < 0 || s.FaultRate >= 1 {
		return fmt.Errorf("experiments: fault rate %v outside [0,1)", s.FaultRate)
	}
	if s.Quorum < 0 || s.Quorum > 1 {
		return fmt.Errorf("experiments: quorum %v outside [0,1]", s.Quorum)
	}
	return nil
}

// Deployment is a fully wired federation ready to train.
type Deployment struct {
	Kind      DatasetKind
	Attack    AttackKind
	Test      *dataset.Dataset
	Clients   []*fl.Client
	Template  *nn.Network
	Store     *history.Store
	Full      *baselines.FullHistory
	Sim       *fl.Simulation
	Scale     Scale
	Seed      uint64
	Malicious []history.ClientID
	// Backdoor is the trigger instance when Attack == BackdoorAttack.
	Backdoor *attack.Backdoor
	// FlipSource and FlipTarget are the label-flip classes.
	FlipSource, FlipTarget int
}

// NewDeployment builds the federation: synthesises the dataset,
// partitions it, poisons the malicious shards, wires both history
// stores and the membership schedule (malicious/forgotten clients join
// at ForgottenJoinRound, everyone else at round 0).
func NewDeployment(kind DatasetKind, atk AttackKind, scale Scale, seed uint64) (*Deployment, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	var err error
	var full *dataset.Dataset
	switch kind {
	case Digits:
		full = dataset.SynthDigits(dataset.DefaultDigits(scale.Samples, seed))
	case Traffic:
		full = dataset.SynthTraffic(dataset.DefaultTraffic(scale.Samples, seed))
	default:
		return nil, fmt.Errorf("experiments: unknown dataset kind %d", int(kind))
	}
	r := rng.New(seed)
	train, test := full.Split(r, 0.85)
	var shards []*dataset.Dataset
	if scale.DirichletAlpha > 0 {
		shards, err = dataset.PartitionDirichlet(train, r, scale.Clients, scale.DirichletAlpha)
	} else {
		shards, err = dataset.PartitionIID(train, r, scale.Clients)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: partition: %w", err)
	}

	d := &Deployment{
		Kind: kind, Attack: atk, Test: test, Scale: scale, Seed: seed,
		FlipSource: 7, FlipTarget: 1,
	}
	// Malicious set: the paper samples 20% of clients. We take the
	// first k IDs after a seeded shuffle so the choice is reproducible.
	numMalicious := 0
	if atk != NoAttack {
		numMalicious = int(scale.MaliciousFraction * float64(scale.Clients))
		if numMalicious == 0 {
			numMalicious = 1
		}
	}
	order := r.Split(11).Perm(scale.Clients)
	malicious := make(map[int]bool, numMalicious)
	for _, idx := range order[:numMalicious] {
		malicious[idx] = true
		d.Malicious = append(d.Malicious, history.ClientID(idx))
	}
	var poisoner attack.Poisoner
	switch atk {
	case LabelFlipAttack:
		poisoner = &attack.LabelFlip{SourceClass: d.FlipSource, TargetClass: d.FlipTarget, Fraction: 1}
	case BackdoorAttack:
		d.Backdoor = attack.DefaultBackdoor()
		poisoner = d.Backdoor
	}

	d.Clients = make([]*fl.Client, scale.Clients)
	sched := fl.IntervalSchedule{}
	for i := range d.Clients {
		shard := shards[i]
		join := 0
		if malicious[i] {
			shard = poisoner.Poison(shard, r.Split(12, uint64(i)))
			join = scale.ForgottenJoinRound
		} else if atk == NoAttack && i == d.forgottenBenignIndex() {
			join = scale.ForgottenJoinRound
		}
		d.Clients[i] = &fl.Client{
			ID:        history.ClientID(i),
			Data:      shard,
			BatchSize: scale.BatchSize,
		}
		sched[history.ClientID(i)] = fl.Interval{Join: join, Leave: -1}
	}

	if scale.UseCNN {
		img := full.Dims.H
		switch kind {
		case Digits:
			d.Template = nn.NewDigitsCNN(img, full.Classes)
		default:
			d.Template = nn.NewTrafficCNN(img, full.Classes)
		}
	} else {
		hidden := scale.Hidden
		if hidden <= 0 {
			hidden = 24
		}
		d.Template = nn.NewMLP(full.Dims.Size(), hidden, full.Classes)
	}
	d.Template.Init(r.Split(13))

	var storeOpts []history.StoreOption
	if scale.SpillWindow > 0 {
		storeOpts = append(storeOpts, history.WithSpill(scale.SpillDir, scale.SpillWindow))
	}
	d.Store, err = history.NewStore(d.Template.NumParams(), scale.Delta, storeOpts...)
	if err != nil {
		return nil, err
	}
	d.Store.SetTelemetry(scale.Telemetry)
	d.Full, err = baselines.NewFullHistory(d.Template.NumParams())
	if err != nil {
		return nil, err
	}
	d.Full.SetTelemetry(scale.Telemetry)
	var inj faults.Injector
	var policy *fl.FaultPolicy
	if scale.FaultRate > 0 {
		inj = faults.NewPlan(rng.Mix(seed, 0xfa01), faults.Spec{CrashProb: scale.FaultRate})
		policy = &fl.FaultPolicy{MaxRetries: 2, Quorum: scale.Quorum}
	}
	d.Sim, err = fl.NewSimulation(d.Template, d.Clients, fl.Config{
		LearningRate: scale.LRFor(kind),
		Seed:         seed,
		Parallelism:  scale.Parallelism,
		Schedule:     sched,
		Store:        d.Store,
		Recorders:    []fl.Recorder{d.Full},
		Telemetry:    scale.Telemetry,
		Faults:       inj,
		FaultPolicy:  policy,
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// forgottenBenignIndex is the client that requests erasure in the
// no-attack scenarios (Table I): a fixed, deterministic pick.
func (d *Deployment) forgottenBenignIndex() int { return 1 }

// Forgotten returns the clients to unlearn: the malicious set under an
// attack, or the single erasure-requesting client otherwise.
func (d *Deployment) Forgotten() []history.ClientID {
	if d.Attack != NoAttack {
		return append([]history.ClientID(nil), d.Malicious...)
	}
	return []history.ClientID{history.ClientID(d.forgottenBenignIndex())}
}

// Train runs the full horizon.
func (d *Deployment) Train() error {
	return d.Sim.Run(d.Scale.Rounds)
}

// StoreFromFull re-compresses the full-gradient history into a fresh
// direction store at an arbitrary δ — how the Figure 3 sweep explores
// thresholds without retraining.
func StoreFromFull(full *baselines.FullHistory, delta float64) (*history.Store, error) {
	st, err := history.NewStore(full.Dim(), delta)
	if err != nil {
		return nil, err
	}
	for t := 0; t < full.Rounds(); t++ {
		model, err := full.Model(t)
		if err != nil {
			return nil, err
		}
		ids, err := full.Participants(t)
		if err != nil {
			return nil, err
		}
		grads := make(map[history.ClientID][]float64, len(ids))
		weights := make(map[history.ClientID]float64, len(ids))
		for _, id := range ids {
			if grads[id], err = full.Gradient(t, id); err != nil {
				return nil, err
			}
			if weights[id], err = full.Weight(t, id); err != nil {
				return nil, err
			}
		}
		if err := st.RecordRound(t, model, grads, weights); err != nil {
			return nil, err
		}
	}
	return st, nil
}
