package experiments

import (
	"fmt"
	"strings"

	"fuiov/internal/baselines"
	"fuiov/internal/history"
)

// CostRow quantifies what one unlearning method costs beyond the
// server's CPU: how many gradient computations it demands from
// vehicles during recovery, how many bytes cross the vehicle↔RSU link
// for them, and how many bytes of per-round gradient state the server
// must keep. These are the §I/§II arguments for the paper's design —
// vehicles may be offline, so client cost must be zero, and RSU
// storage must be small.
type CostRow struct {
	Method string
	// ClientGradComputations during recovery (0 = works offline).
	ClientGradComputations int
	// ClientCommBytes moved over the vehicle link for those
	// computations (model down + gradient up, 8 bytes/param each way).
	ClientCommBytes int
	// ServerGradStorageBytes of per-round gradient state the method
	// requires the server to retain.
	ServerGradStorageBytes int
}

// CostTable trains one deployment and derives each method's recovery
// cost. Retraining and FedRecover require online vehicles; FedRecovery
// and Ours do not, but FedRecovery still needs full gradients stored.
func CostTable(scale Scale, seed uint64) ([]CostRow, error) {
	dep, err := NewDeployment(Digits, NoAttack, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := dep.Train(); err != nil {
		return nil, err
	}
	forgotten := dep.Forgotten()
	excluded := make(map[history.ClientID]bool, len(forgotten))
	for _, id := range forgotten {
		excluded[id] = true
	}
	dim := dep.Template.NumParams()
	perCall := 2 * 8 * dim // model down + gradient up
	remaining := len(dep.Clients) - len(forgotten)

	fullBytes := dep.Full.StorageBytes()
	dirBytes := dep.Store.Storage().DirectionBytes

	// FedRecover's exact-call count comes from actually running it.
	fr, err := baselines.FedRecover(dep.Full, dep.Template, dep.Clients, forgotten, baselines.FedRecoverConfig{
		LearningRate: scale.LRFor(Digits),
		PairSize:     scale.PairSize,
		WarmupRounds: 2,
		CorrectEvery: 20,
		Seed:         seed,
		Telemetry:    scale.Telemetry,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: cost fedrecover: %w", err)
	}

	retrainCalls := scale.Rounds * remaining
	rows := []CostRow{
		{
			Method:                 "Retraining",
			ClientGradComputations: retrainCalls,
			ClientCommBytes:        retrainCalls * perCall,
			ServerGradStorageBytes: 0, // needs no history at all
		},
		{
			Method:                 "FedRecover",
			ClientGradComputations: fr.ExactGradientCalls,
			ClientCommBytes:        fr.ExactGradientCalls * perCall,
			ServerGradStorageBytes: fullBytes,
		},
		{
			Method:                 "FedRecovery",
			ClientGradComputations: 0,
			ClientCommBytes:        0,
			ServerGradStorageBytes: fullBytes,
		},
		{
			Method:                 "Ours",
			ClientGradComputations: 0,
			ClientCommBytes:        0,
			ServerGradStorageBytes: dirBytes,
		},
	}
	return rows, nil
}

// FormatCost renders the cost comparison.
func FormatCost(rows []CostRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery cost per method (client side + server gradient storage)\n")
	fmt.Fprintf(&b, "%-12s %12s %14s %16s\n",
		"Method", "client grads", "client bytes", "server grad bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12d %14d %16d\n",
			r.Method, r.ClientGradComputations, r.ClientCommBytes, r.ServerGradStorageBytes)
	}
	return b.String()
}
