package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"fuiov/internal/metrics"
	"fuiov/internal/unlearn"
	"fuiov/internal/unlearn/strategy"
)

// StrategyRow is one strategy's scorecard from the comparative
// harness: how well the unlearned model performs, how much replaying
// it took, what server-side storage it leaned on and how long the
// whole operation ran.
type StrategyRow struct {
	// Strategy is the registry name.
	Strategy string `json:"strategy"`
	// Accuracy is the post-unlearning test accuracy of the final
	// (recovered) model.
	Accuracy float64 `json:"accuracy"`
	// ErasedAccuracy is the test accuracy immediately after erasure,
	// before any recovery rounds — how much utility the raw erasure
	// step costs.
	ErasedAccuracy float64 `json:"erased_accuracy"`
	// BacktrackRound is F for backtracking strategies, −1 otherwise.
	BacktrackRound int `json:"backtrack_round"`
	// RecoveredRounds counts FL-equivalent rounds run to recover.
	RecoveredRounds int `json:"recovered_rounds"`
	// StorageBytes is the per-round gradient state read from the
	// server's history tiers.
	StorageBytes int64 `json:"storage_bytes"`
	// ClientWork counts client-side gradient computations demanded
	// during unlearning.
	ClientWork int `json:"client_work"`
	// WallMillis is the end-to-end wall time of the strategy run.
	WallMillis float64 `json:"wall_ms"`
}

// CompareStrategies trains one seeded deployment (Digits, no attack,
// one benign late joiner requesting erasure) and runs every named
// strategy — all registered ones when names is empty — against the
// same trained federation, so the rows differ only by algorithm. The
// deployment is trained exactly once; strategies must not mutate it,
// which the Request contract demands.
func CompareStrategies(scale Scale, seed uint64, names []string) ([]StrategyRow, error) {
	if len(names) == 0 {
		names = strategy.Names()
	}
	dep, err := NewDeployment(Digits, NoAttack, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := dep.Train(); err != nil {
		return nil, err
	}
	lr := scale.LRFor(Digits)
	req := strategy.Request{
		Forgotten:    dep.Forgotten(),
		Store:        dep.Store,
		Full:         dep.Full,
		Template:     dep.Template,
		Clients:      dep.Clients,
		FinalParams:  dep.Sim.Params(),
		LearningRate: lr,
		Rounds:       scale.Rounds,
		Seed:         seed,
		Parallelism:  scale.Parallelism,
		Noise:        scale.FedRecoveryNoise,
		Unlearn: unlearn.Config{
			PairSize:      scale.PairSize,
			ClipThreshold: scale.ClipThreshold,
			RefreshEvery:  scale.RefreshEvery,
			LearningRate:  lr,
			Telemetry:     scale.Telemetry,
		},
		Telemetry: scale.Telemetry,
	}
	eval := dep.Template.Clone()
	rows := make([]StrategyRow, 0, len(names))
	for _, name := range names {
		start := time.Now()
		res, err := strategy.Unlearn(context.Background(), name, req)
		if err != nil {
			return nil, fmt.Errorf("experiments: strategy %s: %w", name, err)
		}
		rows = append(rows, StrategyRow{
			Strategy:        name,
			Accuracy:        metrics.AccuracyAt(eval, res.Params, dep.Test),
			ErasedAccuracy:  metrics.AccuracyAt(eval, res.Unlearned, dep.Test),
			BacktrackRound:  res.BacktrackRound,
			RecoveredRounds: res.RecoveredRounds,
			StorageBytes:    res.StorageBytes,
			ClientWork:      res.ClientWork,
			WallMillis:      float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	return rows, nil
}

// FormatStrategies renders the comparison in the repo's table layout.
func FormatStrategies(rows []StrategyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "STRATEGY COMPARISON — one seeded scenario, every algorithm\n")
	fmt.Fprintf(&b, "%-12s %9s %8s %6s %9s %12s %11s %9s\n",
		"Strategy", "Accuracy", "Erased", "Back", "Recov.rds", "StorageBytes", "ClientWork", "Wall(ms)")
	for _, r := range rows {
		back := fmt.Sprintf("%d", r.BacktrackRound)
		if r.BacktrackRound < 0 {
			back = "—"
		}
		fmt.Fprintf(&b, "%-12s %9.3f %8.3f %6s %9d %12d %11d %9.1f\n",
			r.Strategy, r.Accuracy, r.ErasedAccuracy, back, r.RecoveredRounds,
			r.StorageBytes, r.ClientWork, r.WallMillis)
	}
	return b.String()
}

// WriteStrategiesJSON emits the rows as the BENCH_strategies.json
// record: {"experiment": "strategies", "strategies": [...]}.
func WriteStrategiesJSON(w io.Writer, rows []StrategyRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string        `json:"experiment"`
		Strategies []StrategyRow `json:"strategies"`
	}{Experiment: "strategies", Strategies: rows})
}
