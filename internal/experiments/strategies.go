package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"fuiov/internal/metrics"
	"fuiov/internal/unlearn"
	"fuiov/internal/unlearn/strategy"
	"fuiov/internal/verify"
)

// StrategyRow is one strategy's scorecard from the comparative
// harness: how well the unlearned model performs, how much replaying
// it took, what server-side storage it leaned on and how long the
// whole operation ran.
type StrategyRow struct {
	// Strategy is the registry name.
	Strategy string `json:"strategy"`
	// Accuracy is the post-unlearning test accuracy of the final
	// (recovered) model.
	Accuracy float64 `json:"accuracy"`
	// ErasedAccuracy is the test accuracy immediately after erasure,
	// before any recovery rounds — how much utility the raw erasure
	// step costs.
	ErasedAccuracy float64 `json:"erased_accuracy"`
	// BacktrackRound is F for backtracking strategies, −1 otherwise.
	BacktrackRound int `json:"backtrack_round"`
	// RecoveredRounds counts FL-equivalent rounds run to recover.
	RecoveredRounds int `json:"recovered_rounds"`
	// StorageBytes is the per-round gradient state read from the
	// server's history tiers.
	StorageBytes int64 `json:"storage_bytes"`
	// ClientWork counts client-side gradient computations demanded
	// during unlearning.
	ClientWork int `json:"client_work"`
	// WallMillis is the end-to-end wall time of the strategy run.
	WallMillis float64 `json:"wall_ms"`
	// Forgetting is the strategy's forgetting scorecard (shadow-model
	// MIA advantage, backdoor retention, relearn time) when the run
	// verified forgetting; nil — omitted from JSON, never zeroed —
	// when verification was skipped (CompareStrategies without a
	// verify.Config, or `fuiov strategies` without -verify).
	Forgetting *verify.Score `json:"forgetting,omitempty"`
}

// CompareStrategies trains one seeded deployment (Digits, no attack,
// one benign late joiner requesting erasure) and runs every named
// strategy — all registered ones when names is empty — against the
// same trained federation, so the rows differ only by algorithm. The
// deployment is trained exactly once; strategies must not mutate it,
// which the Request contract demands. Forgetting verification is
// skipped: every row's Forgetting is nil (omitted from JSON, not
// zeroed); use CompareStrategiesVerified to fill it.
func CompareStrategies(scale Scale, seed uint64, names []string) ([]StrategyRow, error) {
	return CompareStrategiesVerified(scale, seed, names, nil)
}

// CompareStrategiesVerified is CompareStrategies plus forgetting
// verification: when vcfg is non-nil, one verify.Suite (shadow models
// and membership attack fitted once against the shared deployment)
// scores every strategy's unlearned model, filling each row's
// Forgetting block. A nil vcfg skips verification exactly like
// CompareStrategies.
func CompareStrategiesVerified(scale Scale, seed uint64, names []string, vcfg *verify.Config) ([]StrategyRow, error) {
	if len(names) == 0 {
		names = strategy.Names()
	}
	dep, err := NewDeployment(Digits, NoAttack, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := dep.Train(); err != nil {
		return nil, err
	}
	lr := scale.LRFor(Digits)
	req := strategy.Request{
		Forgotten:    dep.Forgotten(),
		Store:        dep.Store,
		Full:         dep.Full,
		Template:     dep.Template,
		Clients:      dep.Clients,
		FinalParams:  dep.Sim.Params(),
		LearningRate: lr,
		Rounds:       scale.Rounds,
		Seed:         seed,
		Parallelism:  scale.Parallelism,
		Noise:        scale.FedRecoveryNoise,
		Unlearn: unlearn.Config{
			PairSize:      scale.PairSize,
			ClipThreshold: scale.ClipThreshold,
			RefreshEvery:  scale.RefreshEvery,
			LearningRate:  lr,
			Telemetry:     scale.Telemetry,
		},
		Telemetry: scale.Telemetry,
	}
	var suite *verify.Suite
	if vcfg != nil {
		suite, err = verify.NewSuite(context.Background(), verify.Target{
			Template:     dep.Template,
			Clients:      dep.Clients,
			Forgotten:    dep.Forgotten(),
			Test:         dep.Test,
			Before:       req.FinalParams,
			LearningRate: lr,
			Seed:         seed,
			Backdoor:     dep.Backdoor,
		}, *vcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: verify suite: %w", err)
		}
	}
	eval := dep.Template.Clone()
	rows := make([]StrategyRow, 0, len(names))
	for _, name := range names {
		start := time.Now()
		res, err := strategy.Unlearn(context.Background(), name, req)
		if err != nil {
			return nil, fmt.Errorf("experiments: strategy %s: %w", name, err)
		}
		row := StrategyRow{
			Strategy:        name,
			Accuracy:        metrics.AccuracyAt(eval, res.Params, dep.Test),
			ErasedAccuracy:  metrics.AccuracyAt(eval, res.Unlearned, dep.Test),
			BacktrackRound:  res.BacktrackRound,
			RecoveredRounds: res.RecoveredRounds,
			StorageBytes:    res.StorageBytes,
			ClientWork:      res.ClientWork,
			// Wall time covers the strategy run itself, not the
			// verification pass — rows stay comparable with and
			// without -verify.
			WallMillis: float64(time.Since(start).Microseconds()) / 1000,
		}
		if suite != nil {
			sc, err := suite.Score(context.Background(), res.Params)
			if err != nil {
				return nil, fmt.Errorf("experiments: verify %s: %w", name, err)
			}
			row.Forgetting = &sc
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatStrategies renders the comparison in the repo's table layout.
// The forgetting columns appear only when at least one row carries a
// verification scorecard.
func FormatStrategies(rows []StrategyRow) string {
	verified := false
	for _, r := range rows {
		if r.Forgetting != nil {
			verified = true
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "STRATEGY COMPARISON — one seeded scenario, every algorithm\n")
	fmt.Fprintf(&b, "%-12s %9s %8s %6s %9s %12s %11s %9s",
		"Strategy", "Accuracy", "Erased", "Back", "Recov.rds", "StorageBytes", "ClientWork", "Wall(ms)")
	if verified {
		fmt.Fprintf(&b, " %15s %8s", "MIA(bef→aft)", "Relearn")
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		back := fmt.Sprintf("%d", r.BacktrackRound)
		if r.BacktrackRound < 0 {
			back = "—"
		}
		fmt.Fprintf(&b, "%-12s %9.3f %8.3f %6s %9d %12d %11d %9.1f",
			r.Strategy, r.Accuracy, r.ErasedAccuracy, back, r.RecoveredRounds,
			r.StorageBytes, r.ClientWork, r.WallMillis)
		if verified {
			if f := r.Forgetting; f != nil {
				relearn := fmt.Sprintf("%d", f.RelearnRounds)
				if f.RelearnRounds < 0 {
					relearn = ">cap"
				}
				fmt.Fprintf(&b, " %6.3f→%-8.3f %8s",
					f.MIAAdvantageBefore, f.MIAAdvantageAfter, relearn)
			} else {
				fmt.Fprintf(&b, " %15s %8s", "—", "—")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// WriteStrategiesJSON emits the rows as the BENCH_strategies.json
// record: {"experiment": "strategies", "strategies": [...]}.
func WriteStrategiesJSON(w io.Writer, rows []StrategyRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string        `json:"experiment"`
		Strategies []StrategyRow `json:"strategies"`
	}{Experiment: "strategies", Strategies: rows})
}
