package experiments

import "testing"

// TestScaleBenchDeterministic runs the smoke sweep twice: the
// checksum (the resolved aggregate) must be bit-identical, and the
// memory columns must match the flat-memory contract.
func TestScaleBenchDeterministic(t *testing.T) {
	cfg := SmokeScaleConfig()
	cfg.Registered = []int{2000}
	cfg.Rounds = 2

	a, err := ScaleBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("rows = %d/%d, want 1/1", len(a), len(b))
	}
	if a[0].Checksum != b[0].Checksum {
		t.Errorf("checksum not reproducible: %v vs %v", a[0].Checksum, b[0].Checksum)
	}
	if want := int64(8 * cfg.Dim * cfg.Shards); a[0].AggBytes != want {
		t.Errorf("AggBytes = %d, want %d", a[0].AggBytes, want)
	}
	if a[0].Cohort != 2000 {
		t.Errorf("Cohort = %d, want full participation 2000", a[0].Cohort)
	}
	if a[0].BarrierBytesProjected != int64(8*cfg.Dim*2000) {
		t.Errorf("BarrierBytesProjected = %d", a[0].BarrierBytesProjected)
	}
}

// TestScaleBenchSampledCohort exercises the Sampler-driven partial
// cohort: K of N fold per round, and the accumulator footprint does
// not depend on either.
func TestScaleBenchSampledCohort(t *testing.T) {
	cfg := ScaleConfig{
		Registered: []int{5000},
		Cohort:     500,
		Dim:        16,
		Shards:     4,
		Rounds:     2,
		Seed:       7,
	}
	rows, err := ScaleBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Cohort != 500 {
		t.Errorf("Cohort = %d, want 500", r.Cohort)
	}
	if r.AggBytes != int64(8*16*4) {
		t.Errorf("AggBytes = %d, want %d", r.AggBytes, 8*16*4)
	}
	if r.SamplerBytes != 4*5000 {
		t.Errorf("SamplerBytes = %d, want %d", r.SamplerBytes, 4*5000)
	}
}
