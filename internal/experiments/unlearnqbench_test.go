package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestUnlearnQBenchSmoke runs the CI-size benchmark end to end and
// pins the structural claims: the coalesced batch costs exactly one
// pass regardless of K, the sequential comparator costs K, and both
// throughput numbers are populated.
func TestUnlearnQBenchSmoke(t *testing.T) {
	cfg := SmokeUnlearnQConfig()
	cfg.Rounds = 48
	cfg.ThroughputRounds = 24
	res, err := UnlearnQBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleRoundsPerSec <= 0 || res.BusyRoundsPerSec <= 0 || res.ThroughputRatio <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if len(res.Rows) != len(cfg.Ks) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.Ks))
	}
	for i, row := range res.Rows {
		if row.K != cfg.Ks[i] {
			t.Errorf("row %d K = %d, want %d", i, row.K, cfg.Ks[i])
		}
		if row.CoalescedPasses != 1 {
			t.Errorf("K=%d coalesced cost %d passes, want 1", row.K, row.CoalescedPasses)
		}
		if row.SequentialPasses != int64(row.K) {
			t.Errorf("K=%d sequential cost %d passes, want %d", row.K, row.SequentialPasses, row.K)
		}
		if row.CoalescedSec <= 0 || row.SequentialSec <= 0 {
			t.Errorf("K=%d timings not measured: %+v", row.K, row)
		}
	}

	var buf bytes.Buffer
	if err := WriteUnlearnQJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "unlearnq"`, `"throughput_ratio"`, `"coalesced_passes"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON artefact missing %s", want)
		}
	}
	if out := FormatUnlearnQ(res); !strings.Contains(out, "coalesced") {
		t.Errorf("table missing coalesced column:\n%s", out)
	}
}

// TestUnlearnQBenchRejectsOversizedK pins the admission guard: the
// forget set must leave surviving clients or recovery is meaningless.
func TestUnlearnQBenchRejectsOversizedK(t *testing.T) {
	cfg := SmokeUnlearnQConfig()
	cfg.Clients = 4
	cfg.Ks = []int{4}
	if _, err := UnlearnQBench(cfg); err == nil {
		t.Fatal("K = fleet size was accepted")
	}
}
