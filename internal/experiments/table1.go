package experiments

import (
	"fmt"
	"strings"

	"fuiov/internal/baselines"
	"fuiov/internal/metrics"
	"fuiov/internal/unlearn"
)

// Table1Row is one row of the paper's Table I: the post-recovery
// global-model accuracy of each unlearning method on one dataset.
type Table1Row struct {
	Dataset     string
	Retraining  float64
	FedRecover  float64
	FedRecovery float64
	Ours        float64
}

// Table1 reproduces Table I: a benign client that joined at round F
// requests erasure; each method unlearns it and the recovered model is
// evaluated on the test set. Expected shape (paper): Retraining ≥
// FedRecover ≥ Ours ≥ FedRecovery.
func Table1(scale Scale, seed uint64) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, 2)
	for _, kind := range []DatasetKind{Digits, Traffic} {
		row, err := table1Row(kind, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 %s: %w", kind, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table1Row(kind DatasetKind, scale Scale, seed uint64) (Table1Row, error) {
	dep, err := NewDeployment(kind, NoAttack, scale, seed)
	if err != nil {
		return Table1Row{}, err
	}
	if err := dep.Train(); err != nil {
		return Table1Row{}, err
	}
	forgotten := dep.Forgotten()
	eval := dep.Template.Clone()
	row := Table1Row{Dataset: kind.String()}

	retr, err := baselines.Retrain(dep.Template, dep.Clients, forgotten, baselines.RetrainConfig{
		LearningRate: scale.LRFor(kind),
		Rounds:       scale.Rounds,
		Seed:         seed,
		Parallelism:  scale.Parallelism,
		Telemetry:    scale.Telemetry,
	})
	if err != nil {
		return Table1Row{}, fmt.Errorf("retrain: %w", err)
	}
	row.Retraining = metrics.AccuracyAt(eval, retr, dep.Test)

	fr, err := baselines.FedRecover(dep.Full, dep.Template, dep.Clients, forgotten, baselines.FedRecoverConfig{
		LearningRate: scale.LRFor(kind),
		PairSize:     scale.PairSize,
		WarmupRounds: 2,
		CorrectEvery: 20, // paper: real gradients every 20 rounds
		Seed:         seed,
		Telemetry:    scale.Telemetry,
	})
	if err != nil {
		return Table1Row{}, fmt.Errorf("fedrecover: %w", err)
	}
	row.FedRecover = metrics.AccuracyAt(eval, fr.Params, dep.Test)

	fry, err := baselines.FedRecovery(dep.Full, dep.Sim.Params(), forgotten, baselines.FedRecoveryConfig{
		LearningRate: scale.LRFor(kind),
		NoiseStdDev:  scale.FedRecoveryNoise,
		Seed:         seed,
		Telemetry:    scale.Telemetry,
	})
	if err != nil {
		return Table1Row{}, fmt.Errorf("fedrecovery: %w", err)
	}
	row.FedRecovery = metrics.AccuracyAt(eval, fry, dep.Test)

	u, err := unlearn.New(dep.Store, unlearn.Config{
		PairSize:      scale.PairSize,
		ClipThreshold: scale.ClipThreshold,
		RefreshEvery:  scale.RefreshEvery,
		LearningRate:  scale.LRFor(kind),
		Telemetry:     scale.Telemetry,
	})
	if err != nil {
		return Table1Row{}, err
	}
	res, err := u.Unlearn(forgotten...)
	if err != nil {
		return Table1Row{}, fmt.Errorf("ours: %w", err)
	}
	row.Ours = metrics.AccuracyAt(eval, res.Params, dep.Test)
	return row, nil
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I — Accuracy of unlearning methods\n")
	fmt.Fprintf(&b, "%-14s %11s %11s %12s %8s\n", "Dataset", "Retraining", "FedRecover", "FedRecovery", "Ours")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %11.3f %11.3f %12.3f %8.3f\n",
			r.Dataset, r.Retraining, r.FedRecover, r.FedRecovery, r.Ours)
	}
	return b.String()
}
