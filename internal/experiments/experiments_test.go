package experiments

import (
	"strings"
	"testing"
)

func TestScaleValidation(t *testing.T) {
	if err := CIScale().Validate(); err != nil {
		t.Errorf("CIScale invalid: %v", err)
	}
	if err := PaperScale().Validate(); err != nil {
		t.Errorf("PaperScale invalid: %v", err)
	}
	bad := CIScale()
	bad.Clients = 1
	if err := bad.Validate(); err == nil {
		t.Error("1 client should be invalid")
	}
	bad = CIScale()
	bad.Rounds = bad.ForgottenJoinRound
	if err := bad.Validate(); err == nil {
		t.Error("rounds <= join round should be invalid")
	}
	bad = CIScale()
	bad.MaliciousFraction = 1
	if err := bad.Validate(); err == nil {
		t.Error("malicious fraction 1 should be invalid")
	}
	bad = CIScale()
	bad.LearningRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero lr should be invalid")
	}
}

func TestDeploymentConstruction(t *testing.T) {
	dep, err := NewDeployment(Digits, NoAttack, CIScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Clients) != CIScale().Clients {
		t.Errorf("clients = %d", len(dep.Clients))
	}
	if len(dep.Malicious) != 0 {
		t.Errorf("no-attack deployment has malicious clients: %v", dep.Malicious)
	}
	if got := dep.Forgotten(); len(got) != 1 {
		t.Errorf("Forgotten = %v, want single benign client", got)
	}
	// Attack deployment marks ~20%.
	atk, err := NewDeployment(Digits, BackdoorAttack, CIScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(atk.Malicious) != 2 { // 20% of 10
		t.Errorf("malicious = %v, want 2 clients", atk.Malicious)
	}
	if atk.Backdoor == nil {
		t.Error("backdoor deployment missing trigger instance")
	}
	if got := atk.Forgotten(); len(got) != 2 {
		t.Errorf("Forgotten = %v", got)
	}
	if _, err := NewDeployment(DatasetKind(99), NoAttack, CIScale(), 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestTable1CIScale(t *testing.T) {
	rows, err := Table1(CIScale(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-14s retrain=%.3f fedrecover=%.3f fedrecovery=%.3f ours=%.3f",
			r.Dataset, r.Retraining, r.FedRecover, r.FedRecovery, r.Ours)
		for name, acc := range map[string]float64{
			"Retraining": r.Retraining, "FedRecover": r.FedRecover,
			"FedRecovery": r.FedRecovery, "Ours": r.Ours,
		} {
			if acc < 0 || acc > 1 {
				t.Errorf("%s %s accuracy out of range: %v", r.Dataset, name, acc)
			}
		}
		// All methods must beat chance (10 or 12 classes → ~0.1).
		if r.Ours < 0.12 {
			t.Errorf("%s: our method at/below chance: %v", r.Dataset, r.Ours)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "MNIST") {
		t.Errorf("FormatTable1 output malformed:\n%s", out)
	}
}

func TestFigure1CIScale(t *testing.T) {
	rows, err := Figure1(CIScale(), 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-10s before=%.2f forgotten=%.2f recovered=%.2f (acc %.2f/%.2f/%.2f)",
			r.Attack, r.BeforeUnlearning, r.AfterForgetting, r.AfterRecovery,
			r.AccBefore, r.AccForgotten, r.AccRecovered)
		// The paper's headline: forgetting collapses the ASR, and
		// recovery does not reintroduce it.
		if r.AfterForgetting > r.BeforeUnlearning+0.05 {
			t.Errorf("%s: forgetting increased ASR %.2f -> %.2f",
				r.Attack, r.BeforeUnlearning, r.AfterForgetting)
		}
		if r.AfterRecovery > r.BeforeUnlearning+0.05 {
			t.Errorf("%s: recovery resurrected the attack: %.2f -> %.2f",
				r.Attack, r.BeforeUnlearning, r.AfterRecovery)
		}
	}
	out := FormatFigure1(rows)
	if !strings.Contains(out, "Fig. 1") {
		t.Errorf("FormatFigure1 malformed:\n%s", out)
	}
}

func TestFigure2CIScale(t *testing.T) {
	points, err := Figure2(CIScale(), 44, []float64{0.01, 1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		t.Logf("L=%-6.2g acc=%.3f", p.Value, p.Accuracy)
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("L=%v: accuracy %v out of range", p.Value, p.Accuracy)
		}
	}
	out := FormatSweep("Fig. 2", "L", points)
	if !strings.Contains(out, "Fig. 2") {
		t.Error("FormatSweep malformed")
	}
}

func TestFigure3CIScale(t *testing.T) {
	points, err := Figure3(CIScale(), 45, []float64{1e-8, 1e-4, 1e-1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		t.Logf("delta=%-8.2g acc=%.3f", p.Value, p.Accuracy)
	}
	// δ=0.1 wipes out nearly all direction information; it must not
	// beat the small-δ setting.
	if points[2].Accuracy > points[0].Accuracy+0.1 {
		t.Errorf("huge delta (%v acc %.3f) outperformed tiny delta (%v acc %.3f)",
			points[2].Value, points[2].Accuracy, points[0].Value, points[0].Accuracy)
	}
}

func TestStorageCIScale(t *testing.T) {
	rows, err := Storage(CIScale(), 46)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%s dir=%dB full=%dB savings=%.1f%%",
			r.Dataset, r.DirectionBytes, r.FullGradientBytes, 100*r.MeasuredSavings)
		if r.MeasuredSavings < 0.95 {
			t.Errorf("%s: savings %.3f below the paper's ~95%% claim", r.Dataset, r.MeasuredSavings)
		}
		if r.DirectionBytes <= 0 || r.FullGradientBytes <= r.DirectionBytes {
			t.Errorf("%s: implausible byte counts %+v", r.Dataset, r)
		}
	}
	if out := FormatStorage(rows); !strings.Contains(out, "95%") {
		t.Error("FormatStorage malformed")
	}
}

func TestAblationsCIScale(t *testing.T) {
	scale := CIScale()
	clip, err := AblationClipping(scale, 47)
	if err != nil {
		t.Fatal(err)
	}
	if len(clip) != 3 {
		t.Fatalf("clipping rows = %d", len(clip))
	}
	for _, r := range clip {
		t.Logf("clip %-12s acc=%.3f", r.Setting, r.Accuracy)
	}

	refresh, err := AblationRefresh(scale, 47, []int{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(refresh) != 2 {
		t.Fatalf("refresh rows = %d", len(refresh))
	}
	for _, r := range refresh {
		t.Logf("refresh %-10s acc=%.3f", r.Setting, r.Accuracy)
	}

	boot, err := AblationBootstrap(scale, 47)
	if err != nil {
		t.Fatal(err)
	}
	if len(boot) != 2 {
		t.Fatalf("bootstrap rows = %d", len(boot))
	}
	for _, r := range boot {
		t.Logf("bootstrap %-18s acc=%.3f", r.Setting, r.Accuracy)
	}
	if out := FormatAblation("A1", clip); !strings.Contains(out, "elementwise") {
		t.Error("FormatAblation malformed")
	}

	hetero, err := AblationHeterogeneity(scale, 47, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(hetero) != 2 {
		t.Fatalf("heterogeneity rows = %d", len(hetero))
	}
	if hetero[0].Setting != "iid" || !strings.Contains(hetero[1].Setting, "dirichlet") {
		t.Errorf("heterogeneity settings = %+v", hetero)
	}
	for _, r := range hetero {
		t.Logf("heterogeneity %-16s acc=%.3f", r.Setting, r.Accuracy)
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Errorf("accuracy out of range: %+v", r)
		}
	}
}

func TestStoreFromFullMatchesDirectStore(t *testing.T) {
	dep, err := NewDeployment(Digits, NoAttack, CIScale(), 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Train(); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := StoreFromFull(dep.Full, dep.Store.Delta())
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Rounds() != dep.Store.Rounds() {
		t.Fatalf("rounds %d vs %d", rebuilt.Rounds(), dep.Store.Rounds())
	}
	for round := 0; round < rebuilt.Rounds(); round++ {
		a, err := dep.Store.Participants(round)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rebuilt.Participants(round)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("round %d participants %v vs %v", round, b, a)
		}
		for i := range a {
			da, err := dep.Store.Direction(round, a[i])
			if err != nil {
				t.Fatal(err)
			}
			db, err := rebuilt.Direction(round, b[i])
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < da.Len(); j++ {
				if da.At(j) != db.At(j) {
					t.Fatalf("round %d client %d dir[%d] mismatch", round, a[i], j)
				}
			}
		}
	}
	// Join rounds preserved (critical for backtracking).
	for _, id := range dep.Store.Clients() {
		wantJoin, err := dep.Store.JoinRound(id)
		if err != nil {
			t.Fatal(err)
		}
		gotJoin, err := rebuilt.JoinRound(id)
		if err != nil {
			t.Fatal(err)
		}
		if wantJoin != gotJoin {
			t.Fatalf("client %d join %d vs %d", id, gotJoin, wantJoin)
		}
	}
}

func TestCostTableCIScale(t *testing.T) {
	rows, err := CostTable(CIScale(), 49)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]CostRow{}
	for _, r := range rows {
		byName[r.Method] = r
		t.Logf("%-12s grads=%d comm=%dB storage=%dB",
			r.Method, r.ClientGradComputations, r.ClientCommBytes, r.ServerGradStorageBytes)
	}
	// The paper's qualitative cost claims:
	if byName["Ours"].ClientGradComputations != 0 || byName["Ours"].ClientCommBytes != 0 {
		t.Error("our method must need no client work during recovery")
	}
	if byName["FedRecovery"].ClientGradComputations != 0 {
		t.Error("FedRecovery is server-side")
	}
	if byName["Retraining"].ClientGradComputations <= byName["FedRecover"].ClientGradComputations {
		t.Error("retraining should cost clients more than FedRecover")
	}
	if byName["FedRecover"].ClientGradComputations == 0 {
		t.Error("FedRecover needs online clients")
	}
	if byName["Ours"].ServerGradStorageBytes*10 > byName["FedRecover"].ServerGradStorageBytes {
		t.Errorf("direction storage (%d) should be far below full storage (%d)",
			byName["Ours"].ServerGradStorageBytes, byName["FedRecover"].ServerGradStorageBytes)
	}
	if out := FormatCost(rows); !strings.Contains(out, "Ours") {
		t.Error("FormatCost malformed")
	}
}
