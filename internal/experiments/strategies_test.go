package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fuiov/internal/unlearn/strategy"
)

// TestCompareStrategiesCIScale runs the comparative harness at CI
// scale over every registered strategy and sanity-checks the rows.
func TestCompareStrategiesCIScale(t *testing.T) {
	rows, err := CompareStrategies(CIScale(), 47, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(strategy.Names()); len(rows) != want {
		t.Fatalf("%d rows, want one per registered strategy (%d)", len(rows), want)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Strategy] {
			t.Errorf("duplicate row for %q", r.Strategy)
		}
		seen[r.Strategy] = true
		if r.Accuracy <= 0.2 || r.Accuracy > 1 {
			t.Errorf("%s: implausible post-unlearn accuracy %v", r.Strategy, r.Accuracy)
		}
		if r.WallMillis < 0 {
			t.Errorf("%s: negative wall time", r.Strategy)
		}
	}
	for _, name := range []string{"paper", "retrain", "federaser", "pga", "not"} {
		if !seen[name] {
			t.Errorf("no row for %q", name)
		}
	}
	// Storage regimes: the paper's 2-bit store must undercut the
	// full-gradient strategies by a wide margin.
	var paperBytes, eraserBytes int64
	for _, r := range rows {
		switch r.Strategy {
		case "paper":
			paperBytes = r.StorageBytes
		case "federaser":
			eraserBytes = r.StorageBytes
		}
	}
	if paperBytes <= 0 || eraserBytes <= 0 || paperBytes*4 > eraserBytes {
		t.Errorf("storage accounting off: paper %d bytes vs federaser %d", paperBytes, eraserBytes)
	}

	out := FormatStrategies(rows)
	if !strings.Contains(out, "STRATEGY COMPARISON") || !strings.Contains(out, "paper") {
		t.Errorf("FormatStrategies output malformed:\n%s", out)
	}

	var buf bytes.Buffer
	if err := WriteStrategiesJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Experiment string        `json:"experiment"`
		Strategies []StrategyRow `json:"strategies"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("BENCH_strategies.json round-trip: %v", err)
	}
	if decoded.Experiment != "strategies" || len(decoded.Strategies) != len(rows) {
		t.Errorf("JSON record lost rows: %+v", decoded)
	}
}

// TestCompareStrategiesFilter checks name filtering and unknown-name
// rejection.
func TestCompareStrategiesFilter(t *testing.T) {
	rows, err := CompareStrategies(CIScale(), 47, []string{"not"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Strategy != "not" {
		t.Fatalf("filtered rows = %+v", rows)
	}
	if _, err := CompareStrategies(CIScale(), 47, []string{"bogus"}); err == nil {
		t.Fatal("unknown strategy name accepted")
	}
}
