package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fuiov/internal/history"
	"fuiov/internal/unlearn"
)

// UnlearnQConfig parameterises the concurrent-unlearning benchmark:
// a synthetic federation whose training loop keeps appending rounds at
// a fixed cadence while the unlearn.Queue backtracks and recovers on
// the live store. Gradients are synthetic (deterministic per
// (seed, client, round)) so the benchmark measures the unlearning
// service, not model compute.
type UnlearnQConfig struct {
	// Clients is the fleet size; every client joins at round 0 and
	// participates in every round, so each unlearning pass recovers the
	// full history — the deepest (worst-case) backtrack.
	Clients int
	// Dim is the model dimension.
	Dim int
	// Rounds is the training history depth recorded before the first
	// unlearning request.
	Rounds int
	// Ks are the queued-request batch sizes measured coalesced vs
	// sequential (e.g. 1, 4, 16).
	Ks []int
	// Seed drives the synthetic gradients.
	Seed uint64
	// Parallelism bounds the recovery estimation workers; it is kept
	// below GOMAXPROCS so the training loop keeps a core during the
	// overlapped-throughput phase. 0 = 2.
	Parallelism int
	// RoundInterval is the simulated collection-window cadence between
	// training rounds during the throughput phases: real IoV rounds
	// take wall-clock time, and it is against that cadence that the
	// "rounds keep running during recovery" claim is measured.
	RoundInterval time.Duration
	// ThroughputRounds is the number of rounds timed in the idle
	// baseline phase.
	ThroughputRounds int
}

// DefaultUnlearnQConfig is the checked-in BENCH_unlearn.json run: a
// deep history and enough queued requests to show coalescing flatten
// the K-request cost to a single pass.
func DefaultUnlearnQConfig() UnlearnQConfig {
	return UnlearnQConfig{
		Clients:          48,
		Dim:              768,
		Rounds:           1024,
		Ks:               []int{1, 4, 16},
		Seed:             42,
		Parallelism:      2,
		RoundInterval:    200 * time.Microsecond,
		ThroughputRounds: 512,
	}
}

// SmokeUnlearnQConfig is the CI smoke run: small enough to finish in
// seconds, big enough to exercise every phase.
func SmokeUnlearnQConfig() UnlearnQConfig {
	return UnlearnQConfig{
		Clients:          12,
		Dim:              128,
		Rounds:           96,
		Ks:               []int{1, 4},
		Seed:             42,
		Parallelism:      1,
		RoundInterval:    50 * time.Microsecond,
		ThroughputRounds: 64,
	}
}

// UnlearnQRow is one batch size's latency measurement: K requests
// submitted together (one coalesced pass) versus the same K requests
// submitted strictly one after another (K passes).
type UnlearnQRow struct {
	K int `json:"k"`
	// CoalescedSec is the wall-clock from Start to the last request's
	// completion when all K requests were pending before the pass began.
	CoalescedSec float64 `json:"coalesced_sec"`
	// CoalescedPasses is the number of recovery passes the coalesced
	// batch cost (the point: 1, independent of K).
	CoalescedPasses int64 `json:"coalesced_passes"`
	// VsSingleRequest is CoalescedSec over the K=1 coalesced latency —
	// the acceptance ratio (≤ 2 means K requests cost at most twice
	// one request).
	VsSingleRequest float64 `json:"vs_single_request"`
	// SequentialSec and SequentialPasses are the submit-wait-repeat
	// comparator: K passes, each over the freshly rewritten store.
	SequentialSec    float64 `json:"sequential_sec"`
	SequentialPasses int64   `json:"sequential_passes"`
}

// UnlearnQResult is the BENCH_unlearn.json payload.
type UnlearnQResult struct {
	Clients int    `json:"clients"`
	Dim     int    `json:"dim"`
	Rounds  int    `json:"rounds"`
	Seed    uint64 `json:"seed"`
	// RoundIntervalUS is the simulated round cadence in microseconds.
	RoundIntervalUS int64 `json:"round_interval_us"`
	// IdleRoundsPerSec is the training-round throughput with no
	// unlearning in flight; BusyRoundsPerSec the throughput measured
	// while a full-depth recovery pass was actively chasing the tip.
	IdleRoundsPerSec float64 `json:"idle_rounds_per_sec"`
	BusyRoundsPerSec float64 `json:"busy_rounds_per_sec"`
	// ThroughputRatio is busy/idle — the "within 10% of baseline"
	// acceptance number (≥ 0.9).
	ThroughputRatio float64 `json:"throughput_ratio"`
	// BusyRounds is how many training rounds committed while the
	// overlapped pass was in flight; BusyPassSec that pass's end-to-end
	// latency (submit to commit) under concurrent training.
	BusyRounds  int           `json:"busy_rounds"`
	BusyPassSec float64       `json:"busy_pass_sec"`
	Rows        []UnlearnQRow `json:"rows"`
}

// qWorld is the benchmark's federation stand-in: a history store plus
// a parameter vector advanced by a mutex-guarded training loop — the
// same serialisation the RSU coordinator applies around its engine.
type qWorld struct {
	cfg UnlearnQConfig

	mu     sync.Mutex
	store  *history.Store
	params []float64
	round  int
}

const qLearningRate = 0.05

// trainRound appends one synthetic federated round: every client
// uploads a deterministic gradient, the mean is applied at the
// benchmark learning rate, and the round is recorded.
func (w *qWorld) trainRound() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	grads := make(map[history.ClientID][]float64, w.cfg.Clients)
	weights := make(map[history.ClientID]float64, w.cfg.Clients)
	agg := make([]float64, w.cfg.Dim)
	for id := 0; id < w.cfg.Clients; id++ {
		g := make([]float64, w.cfg.Dim)
		synthGrad(g, w.cfg.Seed, history.ClientID(id), w.round)
		grads[history.ClientID(id)] = g
		weights[history.ClientID(id)] = 1
		for j, v := range g {
			agg[j] += v
		}
	}
	if err := w.store.RecordRound(w.round, w.params, grads, weights); err != nil {
		return err
	}
	scale := qLearningRate / float64(w.cfg.Clients)
	for j := range w.params {
		w.params[j] -= scale * agg[j]
	}
	w.round++
	return nil
}

// newQWorld builds a world with cfg.Rounds of recorded history.
func newQWorld(cfg UnlearnQConfig) (*qWorld, error) {
	store, err := history.NewStore(cfg.Dim, 0.01)
	if err != nil {
		return nil, err
	}
	w := &qWorld{cfg: cfg, store: store, params: make([]float64, cfg.Dim)}
	for t := 0; t < cfg.Rounds; t++ {
		if err := w.trainRound(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// snapshot freezes the world so every measurement phase can restart
// from an identical store and model.
func (w *qWorld) snapshot() ([]byte, []float64, error) {
	var buf bytes.Buffer
	if err := w.store.Save(&buf); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), append([]float64(nil), w.params...), nil
}

// restore rewinds the world to a snapshot.
func (w *qWorld) restore(snap []byte, params []float64) error {
	store, err := history.Load(bytes.NewReader(snap))
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.store = store
	w.params = append([]float64(nil), params...)
	w.round = store.Rounds()
	return nil
}

// newQueue wires an unlearn.Queue to the world exactly as the RSU
// coordinator does: the store accessor and the commit hook both take
// the world mutex, so installation serialises with training rounds.
func (w *qWorld) newQueue(paused bool) (*unlearn.Queue, error) {
	return unlearn.NewQueue(unlearn.QueueConfig{
		Store: func() *history.Store {
			w.mu.Lock()
			defer w.mu.Unlock()
			return w.store
		},
		Config: unlearn.Config{
			LearningRate: qLearningRate,
			Parallelism:  w.cfg.Parallelism,
		},
		Commit: func(finish func() (*unlearn.QueueCommit, error)) error {
			w.mu.Lock()
			defer w.mu.Unlock()
			qc, err := finish()
			if err != nil {
				return err
			}
			w.store = qc.Store
			copy(w.params, qc.Result.Params)
			return nil
		},
		StartPaused: paused,
	})
}

// timeRounds appends n training rounds at the configured cadence and
// returns rounds per second.
func (w *qWorld) timeRounds(n int) (float64, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := w.trainRound(); err != nil {
			return 0, err
		}
		time.Sleep(w.cfg.RoundInterval)
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// UnlearnQBench measures the concurrent unlearning service: training
// throughput while a recovery pass chases the live tip versus idle,
// and end-to-end latency for K queued requests coalesced into one
// pass versus submitted sequentially.
func UnlearnQBench(cfg UnlearnQConfig) (*UnlearnQResult, error) {
	def := DefaultUnlearnQConfig()
	if cfg.Clients <= 0 {
		cfg.Clients = def.Clients
	}
	if cfg.Dim <= 0 {
		cfg.Dim = def.Dim
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = def.Rounds
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = def.Ks
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = def.Parallelism
	}
	if cfg.RoundInterval <= 0 {
		cfg.RoundInterval = def.RoundInterval
	}
	if cfg.ThroughputRounds <= 0 {
		cfg.ThroughputRounds = def.ThroughputRounds
	}
	maxK := 0
	for _, k := range cfg.Ks {
		if k > maxK {
			maxK = k
		}
	}
	if maxK >= cfg.Clients {
		return nil, fmt.Errorf("experiments: largest K %d must leave surviving clients (fleet %d)", maxK, cfg.Clients)
	}

	w, err := newQWorld(cfg)
	if err != nil {
		return nil, err
	}
	snap, params, err := w.snapshot()
	if err != nil {
		return nil, err
	}
	res := &UnlearnQResult{
		Clients:         cfg.Clients,
		Dim:             cfg.Dim,
		Rounds:          cfg.Rounds,
		Seed:            cfg.Seed,
		RoundIntervalUS: cfg.RoundInterval.Microseconds(),
	}

	// Phase 1: idle baseline throughput.
	if res.IdleRoundsPerSec, err = w.timeRounds(cfg.ThroughputRounds); err != nil {
		return nil, err
	}

	// Phase 2: throughput during an active full-depth recovery. The
	// training loop keeps its cadence until the request commits; every
	// round counted here landed while the pass was in flight (give or
	// take the final iteration).
	if err := w.restore(snap, params); err != nil {
		return nil, err
	}
	q, err := w.newQueue(false)
	if err != nil {
		return nil, err
	}
	var passDone atomic.Bool
	passStart := time.Now()
	id, err := q.Submit(history.ClientID(1))
	if err != nil {
		q.Close()
		return nil, err
	}
	var passSec float64
	var waitErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		info, err := q.Wait(context.Background(), id)
		passSec = time.Since(passStart).Seconds()
		passDone.Store(true)
		if err != nil {
			waitErr = err
		} else if info.Err != nil {
			waitErr = info.Err
		}
	}()
	busyStart := time.Now()
	busyRounds := 0
	for !passDone.Load() {
		if err := w.trainRound(); err != nil {
			q.Close()
			return nil, err
		}
		busyRounds++
		time.Sleep(cfg.RoundInterval)
	}
	busyElapsed := time.Since(busyStart).Seconds()
	wg.Wait()
	if err := q.Close(); err != nil {
		return nil, err
	}
	if waitErr != nil {
		return nil, fmt.Errorf("experiments: overlapped pass: %w", waitErr)
	}
	if busyRounds == 0 {
		// The pass finished inside the first round; the ratio would be
		// 0/idle. Treat as full throughput — nothing was impeded.
		res.BusyRoundsPerSec = res.IdleRoundsPerSec
	} else {
		res.BusyRoundsPerSec = float64(busyRounds) / busyElapsed
	}
	res.BusyRounds = busyRounds
	res.BusyPassSec = passSec
	res.ThroughputRatio = res.BusyRoundsPerSec / res.IdleRoundsPerSec

	// Phase 3: K-request latency, coalesced vs sequential. Each run
	// restarts from the frozen snapshot so every pass sees the same
	// history depth.
	var singleSec float64
	for _, k := range cfg.Ks {
		row := UnlearnQRow{K: k}

		// Coalesced: all K requests pending before the worker starts,
		// so they fold into one pass over the union.
		if err := w.restore(snap, params); err != nil {
			return nil, err
		}
		q, err := w.newQueue(true)
		if err != nil {
			return nil, err
		}
		ids := make([]string, 0, k)
		for i := 1; i <= k; i++ {
			id, err := q.Submit(history.ClientID(i))
			if err != nil {
				q.Close()
				return nil, err
			}
			ids = append(ids, id)
		}
		start := time.Now()
		q.Start()
		for _, id := range ids {
			info, err := q.Wait(context.Background(), id)
			if err != nil {
				q.Close()
				return nil, err
			}
			if info.Err != nil {
				q.Close()
				return nil, fmt.Errorf("experiments: coalesced K=%d: %w", k, info.Err)
			}
		}
		row.CoalescedSec = time.Since(start).Seconds()
		row.CoalescedPasses = q.Stats().Passes
		if err := q.Close(); err != nil {
			return nil, err
		}

		// Sequential: submit-wait-repeat forces one pass per request,
		// each over the freshly rewritten store.
		if err := w.restore(snap, params); err != nil {
			return nil, err
		}
		if q, err = w.newQueue(false); err != nil {
			return nil, err
		}
		start = time.Now()
		for i := 1; i <= k; i++ {
			id, err := q.Submit(history.ClientID(i))
			if err != nil {
				q.Close()
				return nil, err
			}
			info, err := q.Wait(context.Background(), id)
			if err != nil {
				q.Close()
				return nil, err
			}
			if info.Err != nil {
				q.Close()
				return nil, fmt.Errorf("experiments: sequential K=%d request %d: %w", k, i, info.Err)
			}
		}
		row.SequentialSec = time.Since(start).Seconds()
		row.SequentialPasses = q.Stats().Passes
		if err := q.Close(); err != nil {
			return nil, err
		}

		if k == 1 || singleSec == 0 {
			singleSec = row.CoalescedSec
		}
		row.VsSingleRequest = row.CoalescedSec / singleSec
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatUnlearnQ renders the benchmark as the stdout table.
func FormatUnlearnQ(res *UnlearnQResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Unlearn queue — training throughput under recovery and coalesced latency\n")
	fmt.Fprintf(&b, "history: %d rounds × %d clients, dim %d, cadence %dµs\n",
		res.Rounds, res.Clients, res.Dim, res.RoundIntervalUS)
	fmt.Fprintf(&b, "rounds/s idle %.0f, during recovery %.0f (ratio %.3f); overlapped pass %.3fs over %d live rounds\n",
		res.IdleRoundsPerSec, res.BusyRoundsPerSec, res.ThroughputRatio, res.BusyPassSec, res.BusyRounds)
	fmt.Fprintf(&b, "%6s %16s %10s %16s %10s %12s\n",
		"K", "coalesced s", "passes", "sequential s", "passes", "vs single")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%6d %16.4f %10d %16.4f %10d %12.2f\n",
			r.K, r.CoalescedSec, r.CoalescedPasses, r.SequentialSec, r.SequentialPasses, r.VsSingleRequest)
	}
	return b.String()
}

// WriteUnlearnQJSON writes the BENCH_unlearn.json artefact.
func WriteUnlearnQJSON(w io.Writer, res *UnlearnQResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string `json:"experiment"`
		MaxProcs   int    `json:"maxprocs"`
		*UnlearnQResult
	}{
		Experiment:     "unlearnq",
		MaxProcs:       runtime.GOMAXPROCS(0),
		UnlearnQResult: res,
	})
}
