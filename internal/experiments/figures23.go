package experiments

import (
	"fmt"
	"strings"

	"fuiov/internal/metrics"
	"fuiov/internal/unlearn"
)

// SweepPoint is one (hyperparameter value, recovered accuracy) pair of
// Figures 2 and 3.
type SweepPoint struct {
	Value    float64
	Accuracy float64
}

// DefaultLValues is the Figure 2 grid for the clip threshold L. The
// paper sweeps {0.01, 0.1, 0.5, 1, 5, 10} around its optimum L=1; our
// grid spans the same ±2-decade window around the rescaled optimum
// (see PaperScale for the η·L step-cap equivalence).
var DefaultLValues = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}

// DefaultDeltaValues is the Figure 3 grid for the direction threshold
// δ. The paper sweeps decades around its optimum δ=1e-6; our grid
// spans decades around the rescaled optimum δ≈1e-2 (see PaperScale).
var DefaultDeltaValues = []float64{1e-6, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}

// Figure2 reproduces Fig. 2: recovered-model accuracy as the clip
// threshold L varies, with δ fixed. The deployment is trained once;
// only the recovery is repeated. Expected shape: an inverted U — small
// L throttles recovery steps, large L amplifies estimation error.
func Figure2(scale Scale, seed uint64, ls []float64) ([]SweepPoint, error) {
	if len(ls) == 0 {
		ls = DefaultLValues
	}
	dep, err := NewDeployment(Digits, NoAttack, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := dep.Train(); err != nil {
		return nil, err
	}
	forgotten := dep.Forgotten()
	eval := dep.Template.Clone()
	points := make([]SweepPoint, 0, len(ls))
	for _, l := range ls {
		u, err := unlearn.New(dep.Store, unlearn.Config{
			PairSize:      scale.PairSize,
			ClipThreshold: l,
			RefreshEvery:  scale.RefreshEvery,
			LearningRate:  scale.LearningRate,
			Telemetry:     scale.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		res, err := u.Unlearn(forgotten...)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure2 L=%v: %w", l, err)
		}
		points = append(points, SweepPoint{
			Value:    l,
			Accuracy: metrics.AccuracyAt(eval, res.Params, dep.Test),
		})
	}
	return points, nil
}

// Figure3 reproduces Fig. 3: recovered-model accuracy as the direction
// threshold δ varies, with L fixed. Training runs once with full
// gradients recorded; each δ re-compresses that history into a fresh
// direction store. Expected shape: flat/high for small δ, declining as
// δ grows and more gradient information is zeroed out.
func Figure3(scale Scale, seed uint64, deltas []float64) ([]SweepPoint, error) {
	if len(deltas) == 0 {
		deltas = DefaultDeltaValues
	}
	dep, err := NewDeployment(Digits, NoAttack, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := dep.Train(); err != nil {
		return nil, err
	}
	forgotten := dep.Forgotten()
	eval := dep.Template.Clone()
	points := make([]SweepPoint, 0, len(deltas))
	for _, delta := range deltas {
		store, err := StoreFromFull(dep.Full, delta)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure3 δ=%v: %w", delta, err)
		}
		// Leave records must be replayed onto the rebuilt store so
		// membership matches the original (none in this scenario).
		u, err := unlearn.New(store, unlearn.Config{
			PairSize:      scale.PairSize,
			ClipThreshold: scale.ClipThreshold,
			RefreshEvery:  scale.RefreshEvery,
			LearningRate:  scale.LearningRate,
			Telemetry:     scale.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		res, err := u.Unlearn(forgotten...)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure3 δ=%v: %w", delta, err)
		}
		points = append(points, SweepPoint{
			Value:    delta,
			Accuracy: metrics.AccuracyAt(eval, res.Params, dep.Test),
		})
	}
	return points, nil
}

// FormatSweep renders a hyperparameter sweep as a two-column table
// with a text bar chart.
func FormatSweep(title, param string, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %9s\n", param, "accuracy")
	for _, p := range points {
		bar := strings.Repeat("#", int(p.Accuracy*40+0.5))
		fmt.Fprintf(&b, "%-12.2g %9.3f  %s\n", p.Value, p.Accuracy, bar)
	}
	return b.String()
}
