package experiments

import (
	"fmt"
	"strings"

	"fuiov/internal/attack"
	"fuiov/internal/metrics"
	"fuiov/internal/unlearn"
)

// Figure1Row is one attack's trajectory through the unlearning
// pipeline: attack success rate before unlearning, after forgetting
// (backtracking), and after recovery. Test accuracy at each stage is
// included as supporting context.
type Figure1Row struct {
	Attack string
	// ASR at the three stages of Fig. 1.
	BeforeUnlearning float64
	AfterForgetting  float64
	AfterRecovery    float64
	// Accuracy at the same stages.
	AccBefore, AccForgotten, AccRecovered float64
}

// Figure1 reproduces Fig. 1: 20% of clients mount a label-flip or
// backdoor attack from round F; the server unlearns them. Expected
// shape: high ASR before, near-zero after forgetting, and no
// resurgence after recovery.
func Figure1(scale Scale, seed uint64) ([]Figure1Row, error) {
	rows := make([]Figure1Row, 0, 2)
	for _, atk := range []AttackKind{LabelFlipAttack, BackdoorAttack} {
		row, err := figure1Row(atk, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure1 %s: %w", atk, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func figure1Row(atk AttackKind, scale Scale, seed uint64) (Figure1Row, error) {
	dep, err := NewDeployment(Digits, atk, scale, seed)
	if err != nil {
		return Figure1Row{}, err
	}
	if err := dep.Train(); err != nil {
		return Figure1Row{}, err
	}
	row := Figure1Row{Attack: atk.String()}
	eval := dep.Template.Clone()
	asr := func(params []float64) float64 {
		eval.SetParamVector(params)
		switch atk {
		case BackdoorAttack:
			return dep.Backdoor.SuccessRate(eval, dep.Test)
		default:
			return attack.FlipSuccessRate(eval, dep.Test, dep.FlipSource, dep.FlipTarget)
		}
	}

	final := dep.Sim.Params()
	row.BeforeUnlearning = asr(final)
	row.AccBefore = metrics.AccuracyAt(eval, final, dep.Test)

	u, err := unlearn.New(dep.Store, unlearn.Config{
		PairSize:      scale.PairSize,
		ClipThreshold: scale.ClipThreshold,
		RefreshEvery:  scale.RefreshEvery,
		LearningRate:  scale.LearningRate,
		Telemetry:     scale.Telemetry,
	})
	if err != nil {
		return Figure1Row{}, err
	}
	res, err := u.Unlearn(dep.Forgotten()...)
	if err != nil {
		return Figure1Row{}, err
	}
	row.AfterForgetting = asr(res.Unlearned)
	row.AccForgotten = metrics.AccuracyAt(eval, res.Unlearned, dep.Test)
	row.AfterRecovery = asr(res.Params)
	row.AccRecovered = metrics.AccuracyAt(eval, res.Params, dep.Test)
	return row, nil
}

// FormatFigure1 renders the attack-success-rate bars of Fig. 1 as a
// text table.
func FormatFigure1(rows []Figure1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — Attack success rate across unlearning stages (MNIST-synth)\n")
	fmt.Fprintf(&b, "%-10s %18s %18s %16s\n", "Attack", "Before unlearning", "After forgetting", "After recovery")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %17.1f%% %17.1f%% %15.1f%%\n",
			r.Attack, 100*r.BeforeUnlearning, 100*r.AfterForgetting, 100*r.AfterRecovery)
	}
	fmt.Fprintf(&b, "\nSupporting test accuracy\n")
	fmt.Fprintf(&b, "%-10s %18s %18s %16s\n", "Attack", "Before", "Forgotten", "Recovered")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %18.3f %18.3f %16.3f\n",
			r.Attack, r.AccBefore, r.AccForgotten, r.AccRecovered)
	}
	return b.String()
}
