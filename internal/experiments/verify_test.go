package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"fuiov/internal/verify"
)

// TestVerifyForgettingProperty is the acceptance property of the
// verification suite, at the same CI scale and seed the harness tests
// use: on the backdoored deployment, retraining from scratch — the
// gold standard — must score at chance against the membership attack,
// the paper scheme must land within epsilon of it, and the trigger
// must be (mostly) gone from both. Runs under -race in the check.sh
// smoke batch.
func TestVerifyForgettingProperty(t *testing.T) {
	rows, err := VerifyStrategies(context.Background(), CIScale(), 47,
		[]string{"retrain", "paper"}, verify.Config{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]VerifyRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	retrain, paper := byName["retrain"], byName["paper"]

	// The attack must actually work: the pre-unlearn model leaks
	// membership of the poisoned shards.
	if retrain.MIAAdvantageBefore <= 0.05 {
		t.Errorf("attack finds no signal in the pre-unlearn model: advantage %v", retrain.MIAAdvantageBefore)
	}
	// Retraining never saw the forgotten data: ≈ chance.
	if adv := retrain.MIAAdvantageAfter; adv > 0.05 {
		t.Errorf("retrain MIA advantage %v, want ≤ 0.05 (≈ chance)", adv)
	}
	// The paper scheme must be within epsilon of the gold standard.
	if gap := paper.MIAAdvantageAfter - retrain.MIAAdvantageAfter; gap < -0.05 || gap > 0.05 {
		t.Errorf("paper MIA advantage %v vs retrain %v: |gap| > 0.05",
			paper.MIAAdvantageAfter, retrain.MIAAdvantageAfter)
	}
	for _, r := range []VerifyRow{retrain, paper} {
		if r.BackdoorBefore == nil || r.BackdoorAfter == nil {
			t.Fatalf("%s: backdoor scores missing on the backdoored deployment", r.Strategy)
		}
		if *r.BackdoorBefore < 0.5 {
			t.Errorf("%s: pre-unlearn backdoor success %v, want an implanted trigger (≥ 0.5)", r.Strategy, *r.BackdoorBefore)
		}
		if *r.BackdoorAfter >= *r.BackdoorBefore {
			t.Errorf("%s: unlearning did not reduce backdoor success (%v → %v)",
				r.Strategy, *r.BackdoorBefore, *r.BackdoorAfter)
		}
	}
	// Retrain genuinely forgets: if it re-memorizes at all, it must
	// not be faster than the paper scheme, which recovers from a
	// mid-history checkpoint.
	if paper.RelearnRounds > 0 && retrain.RelearnRounds > 0 && retrain.RelearnRounds < paper.RelearnRounds {
		t.Errorf("retrain re-memorized in %d rounds, faster than paper's %d",
			retrain.RelearnRounds, paper.RelearnRounds)
	}
}

// smokeVerifyConfig shrinks the suite for runtime-sensitive tests
// without disabling any code path.
func smokeVerifyConfig() verify.Config {
	return verify.Config{Shadows: 3, ShadowSteps: 40, RelearnCap: 8}
}

// TestVerifyStrategiesDeterministic is the bit-determinism contract at
// the harness level: two full runs produce identical rows.
func TestVerifyStrategiesDeterministic(t *testing.T) {
	var runs [2][]VerifyRow
	for i := range runs {
		rows, err := VerifyStrategies(context.Background(), CIScale(), 43,
			[]string{"paper"}, smokeVerifyConfig())
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = rows
	}
	if !reflect.DeepEqual(flattenRows(runs[0]), flattenRows(runs[1])) {
		t.Fatalf("verify harness not deterministic:\n%+v\nvs\n%+v", runs[0], runs[1])
	}
}

// flattenRows dereferences the optional pointers so DeepEqual compares
// values.
func flattenRows(rows []VerifyRow) []map[string]float64 {
	out := make([]map[string]float64, len(rows))
	deref := func(p *float64) float64 {
		if p == nil {
			return -1
		}
		return *p
	}
	for i, r := range rows {
		out[i] = map[string]float64{
			"acc":     r.Accuracy,
			"miaB":    r.MIAAdvantageBefore,
			"miaA":    r.MIAAdvantageAfter,
			"bdB":     deref(r.BackdoorBefore),
			"bdA":     deref(r.BackdoorAfter),
			"bdR":     deref(r.BackdoorRelearn),
			"relearn": float64(r.RelearnRounds),
			"thr":     r.RelearnThreshold,
		}
	}
	return out
}

// TestWriteVerifyJSONGolden pins the BENCH_verify.json schema: record
// envelope, per-row keys, and omission (not zeroing) of the optional
// backdoor fields.
func TestWriteVerifyJSONGolden(t *testing.T) {
	bdB, bdA := 0.9, 0.1
	rows := []VerifyRow{
		{
			Strategy: "paper",
			Accuracy: 0.75,
			Score: verify.Score{
				MIAAdvantageBefore: 0.2,
				MIAAdvantageAfter:  0.01,
				BackdoorBefore:     &bdB,
				BackdoorAfter:      &bdA,
				RelearnRounds:      7,
				RelearnThreshold:   0.8,
			},
		},
		{
			Strategy: "retrain",
			Accuracy: 0.8,
			Score: verify.Score{
				MIAAdvantageBefore: 0.2,
				RelearnRounds:      -1,
				RelearnThreshold:   0.8,
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteVerifyJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, key := range []string{
		`"experiment": "verify"`, `"rows"`, `"strategy"`, `"accuracy"`,
		`"mia_advantage_before"`, `"mia_advantage_after"`,
		`"backdoor_before"`, `"backdoor_after"`,
		`"relearn_rounds"`, `"relearn_threshold"`,
	} {
		if !strings.Contains(got, key) {
			t.Errorf("BENCH_verify.json missing %s:\n%s", key, got)
		}
	}
	// The retrain row has no backdoor measurements: the keys must be
	// absent, not zeroed — count occurrences.
	if n := strings.Count(got, `"backdoor_before"`); n != 1 {
		t.Errorf(`"backdoor_before" appears %d times, want 1 (omitted when nil)`, n)
	}
	if strings.Contains(got, `"backdoor_relearn"`) {
		t.Errorf(`"backdoor_relearn" present though no row set it:\n%s`, got)
	}

	var decoded struct {
		Experiment string      `json:"experiment"`
		Rows       []VerifyRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("BENCH_verify.json round-trip: %v", err)
	}
	if decoded.Experiment != "verify" || len(decoded.Rows) != len(rows) {
		t.Fatalf("JSON record lost rows: %+v", decoded)
	}
	if !reflect.DeepEqual(flattenRows(decoded.Rows), flattenRows(rows)) {
		t.Errorf("rows changed across the round-trip:\n%+v\nvs\n%+v", decoded.Rows, rows)
	}
	if decoded.Rows[1].BackdoorBefore != nil {
		t.Error("omitted backdoor field decoded as non-nil")
	}
}

// TestStrategyRowForgettingOmitted pins the graceful-degradation
// contract in BENCH_strategies.json: without verification the
// forgetting block is absent from the JSON, not an all-zero object;
// with it, the block appears.
func TestStrategyRowForgettingOmitted(t *testing.T) {
	plain, err := json.Marshal(StrategyRow{Strategy: "paper"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "forgetting") {
		t.Errorf("unverified row leaks a forgetting block: %s", plain)
	}
	verified, err := json.Marshal(StrategyRow{
		Strategy:   "paper",
		Forgetting: &verify.Score{MIAAdvantageAfter: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(verified), `"forgetting"`) ||
		!strings.Contains(string(verified), `"mia_advantage_after"`) {
		t.Errorf("verified row lost its forgetting block: %s", verified)
	}

	// The table renderer follows the same rule: no forgetting columns
	// unless some row was verified.
	rows := []StrategyRow{{Strategy: "paper"}}
	if out := FormatStrategies(rows); strings.Contains(out, "MIA") {
		t.Errorf("unverified table shows MIA columns:\n%s", out)
	}
	rows[0].Forgetting = &verify.Score{MIAAdvantageBefore: 0.2, MIAAdvantageAfter: 0.01}
	if out := FormatStrategies(rows); !strings.Contains(out, "MIA") {
		t.Errorf("verified table lost MIA columns:\n%s", out)
	}
}

// TestCompareStrategiesVerified smokes the combined harness: verified
// rows carry a forgetting block, and the plain entry point leaves it
// nil.
func TestCompareStrategiesVerified(t *testing.T) {
	cfg := smokeVerifyConfig()
	cfg.SkipRelearn = true
	rows, err := CompareStrategiesVerified(CIScale(), 47, []string{"paper"}, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Forgetting == nil {
		t.Fatalf("verified harness returned no forgetting block: %+v", rows)
	}
	if rows[0].Forgetting.RelearnRounds != -1 {
		t.Errorf("SkipRelearn leaked a relearn round count: %d", rows[0].Forgetting.RelearnRounds)
	}
	plain, err := CompareStrategies(CIScale(), 47, []string{"paper"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || plain[0].Forgetting != nil {
		t.Fatalf("plain harness attached a forgetting block: %+v", plain)
	}
}
