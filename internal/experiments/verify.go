package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"fuiov/internal/metrics"
	"fuiov/internal/unlearn"
	"fuiov/internal/unlearn/strategy"
	"fuiov/internal/verify"
)

// VerifyRow is one strategy's forgetting scorecard from the
// verification harness.
type VerifyRow struct {
	// Strategy is the registry name.
	Strategy string `json:"strategy"`
	// Accuracy is the unlearned model's clean test accuracy — the
	// utility that forgetting cost.
	Accuracy float64 `json:"accuracy"`
	// Score is the forgetting scorecard (MIA advantage, backdoor
	// retention, relearn time).
	verify.Score
}

// VerifyStrategies trains one seeded backdoored deployment (Digits,
// 20% malicious clients stamping the paper's 3×3 trigger), runs every
// named strategy — all registered ones when names is empty — to erase
// the malicious clients, and scores each unlearned model with a shared
// verify.Suite. The backdoor deployment makes the forgotten data
// distinctive, so all three signals (membership inference, trigger
// retention, relearn time) are meaningful; the shadow models and the
// membership attack are fitted once and reused across strategies.
func VerifyStrategies(ctx context.Context, scale Scale, seed uint64, names []string, cfg verify.Config) ([]VerifyRow, error) {
	if len(names) == 0 {
		names = strategy.Names()
	}
	dep, err := NewDeployment(Digits, BackdoorAttack, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := dep.Train(); err != nil {
		return nil, err
	}
	lr := scale.LRFor(Digits)
	req := strategy.Request{
		Forgotten:    dep.Forgotten(),
		Store:        dep.Store,
		Full:         dep.Full,
		Template:     dep.Template,
		Clients:      dep.Clients,
		FinalParams:  dep.Sim.Params(),
		LearningRate: lr,
		Rounds:       scale.Rounds,
		Seed:         seed,
		Parallelism:  scale.Parallelism,
		Noise:        scale.FedRecoveryNoise,
		Unlearn: unlearn.Config{
			PairSize:      scale.PairSize,
			ClipThreshold: scale.ClipThreshold,
			RefreshEvery:  scale.RefreshEvery,
			LearningRate:  lr,
			Telemetry:     scale.Telemetry,
		},
		Telemetry: scale.Telemetry,
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = scale.Telemetry
	}
	suite, err := verify.NewSuite(ctx, verify.Target{
		Template:     dep.Template,
		Clients:      dep.Clients,
		Forgotten:    dep.Forgotten(),
		Test:         dep.Test,
		Before:       req.FinalParams,
		LearningRate: lr,
		Seed:         seed,
		Backdoor:     dep.Backdoor,
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: verify suite: %w", err)
	}
	eval := dep.Template.Clone()
	rows := make([]VerifyRow, 0, len(names))
	for _, name := range names {
		res, err := strategy.Unlearn(ctx, name, req)
		if err != nil {
			return nil, fmt.Errorf("experiments: strategy %s: %w", name, err)
		}
		sc, err := suite.Score(ctx, res.Params)
		if err != nil {
			return nil, fmt.Errorf("experiments: verify %s: %w", name, err)
		}
		rows = append(rows, VerifyRow{
			Strategy: name,
			Accuracy: metrics.AccuracyAt(eval, res.Params, dep.Test),
			Score:    sc,
		})
	}
	return rows, nil
}

// FormatVerify renders the forgetting scorecards in the repo's table
// layout.
func FormatVerify(rows []VerifyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FORGETTING VERIFICATION — backdoored deployment, malicious clients erased\n")
	fmt.Fprintf(&b, "%-12s %9s %15s %22s %8s\n",
		"Strategy", "Accuracy", "MIA(bef→aft)", "Backdoor(bef→aft→rel)", "Relearn")
	for _, r := range rows {
		bd := "—"
		if r.BackdoorBefore != nil && r.BackdoorAfter != nil {
			rel := "    —"
			if r.BackdoorRelearn != nil {
				rel = fmt.Sprintf("%.3f", *r.BackdoorRelearn)
			}
			bd = fmt.Sprintf("%.3f→%.3f→%s", *r.BackdoorBefore, *r.BackdoorAfter, rel)
		}
		relearn := fmt.Sprintf("%d", r.RelearnRounds)
		if r.RelearnRounds < 0 {
			relearn = ">cap"
		}
		fmt.Fprintf(&b, "%-12s %9.3f %6.3f→%-8.3f %22s %8s\n",
			r.Strategy, r.Accuracy, r.MIAAdvantageBefore, r.MIAAdvantageAfter, bd, relearn)
	}
	return b.String()
}

// WriteVerifyJSON emits the rows as the BENCH_verify.json record:
// {"experiment": "verify", "rows": [...]}.
func WriteVerifyJSON(w io.Writer, rows []VerifyRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string      `json:"experiment"`
		Rows       []VerifyRow `json:"rows"`
	}{Experiment: "verify", Rows: rows})
}
