package experiments

import (
	"fmt"
	"strings"

	"fuiov/internal/metrics"
	"fuiov/internal/unlearn"
)

// AblationRow is one configuration of a design-choice ablation.
type AblationRow struct {
	Setting  string
	Accuracy float64
}

// AblationClipping (DESIGN.md A1) compares the paper's elementwise
// clipping against norm clipping and no clipping at all, holding
// everything else at Table-I settings.
func AblationClipping(scale Scale, seed uint64) ([]AblationRow, error) {
	dep, err := NewDeployment(Digits, NoAttack, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := dep.Train(); err != nil {
		return nil, err
	}
	forgotten := dep.Forgotten()
	eval := dep.Template.Clone()
	modes := []unlearn.ClipMode{unlearn.ClipElementwise, unlearn.ClipNorm, unlearn.ClipOff}
	rows := make([]AblationRow, 0, len(modes))
	for _, mode := range modes {
		u, err := unlearn.New(dep.Store, unlearn.Config{
			PairSize:      scale.PairSize,
			ClipThreshold: scale.ClipThreshold,
			ClipMode:      mode,
			RefreshEvery:  scale.RefreshEvery,
			LearningRate:  scale.LearningRate,
			Telemetry:     scale.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		res, err := u.Unlearn(forgotten...)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation clip %s: %w", mode, err)
		}
		rows = append(rows, AblationRow{
			Setting:  mode.String(),
			Accuracy: metrics.AccuracyAt(eval, res.Params, dep.Test),
		})
	}
	return rows, nil
}

// DefaultRefreshPeriods is the A2 grid (0 disables refresh).
var DefaultRefreshPeriods = []int{0, 5, 21, 50}

// AblationRefresh (DESIGN.md A2) varies the vector-pair refresh
// period, including disabling refresh entirely.
func AblationRefresh(scale Scale, seed uint64, periods []int) ([]AblationRow, error) {
	if len(periods) == 0 {
		periods = DefaultRefreshPeriods
	}
	dep, err := NewDeployment(Digits, NoAttack, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := dep.Train(); err != nil {
		return nil, err
	}
	forgotten := dep.Forgotten()
	eval := dep.Template.Clone()
	rows := make([]AblationRow, 0, len(periods))
	for _, period := range periods {
		cfg := unlearn.Config{
			PairSize:      scale.PairSize,
			ClipThreshold: scale.ClipThreshold,
			RefreshEvery:  period,
			LearningRate:  scale.LearningRate,
			Telemetry:     scale.Telemetry,
		}
		if period == 0 {
			// Config treats 0 as "use default", so express "off" as a
			// period beyond the horizon.
			cfg.RefreshEvery = scale.Rounds + 1
		}
		u, err := unlearn.New(dep.Store, cfg)
		if err != nil {
			return nil, err
		}
		res, err := u.Unlearn(forgotten...)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation refresh %d: %w", period, err)
		}
		setting := fmt.Sprintf("every %d", period)
		if period == 0 {
			setting = "off"
		}
		rows = append(rows, AblationRow{
			Setting:  setting,
			Accuracy: metrics.AccuracyAt(eval, res.Params, dep.Test),
		})
	}
	return rows, nil
}

// AblationBootstrap (DESIGN.md A3) compares seeding L-BFGS pairs from
// pre-join history (the paper's innovation enabling offline clients)
// against starting cold.
func AblationBootstrap(scale Scale, seed uint64) ([]AblationRow, error) {
	dep, err := NewDeployment(Digits, NoAttack, scale, seed)
	if err != nil {
		return nil, err
	}
	if err := dep.Train(); err != nil {
		return nil, err
	}
	forgotten := dep.Forgotten()
	eval := dep.Template.Clone()
	rows := make([]AblationRow, 0, 2)
	for _, disable := range []bool{false, true} {
		u, err := unlearn.New(dep.Store, unlearn.Config{
			PairSize:         scale.PairSize,
			ClipThreshold:    scale.ClipThreshold,
			RefreshEvery:     scale.RefreshEvery,
			LearningRate:     scale.LearningRate,
			DisableBootstrap: disable,
			Telemetry:        scale.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		res, err := u.Unlearn(forgotten...)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation bootstrap=%v: %w", !disable, err)
		}
		setting := "pre-join bootstrap"
		if disable {
			setting = "cold start"
		}
		rows = append(rows, AblationRow{
			Setting:  setting,
			Accuracy: metrics.AccuracyAt(eval, res.Params, dep.Test),
		})
	}
	return rows, nil
}

// DefaultHeterogeneity is the A4 grid of Dirichlet concentrations
// (0 = IID).
var DefaultHeterogeneity = []float64{0, 10, 1, 0.3}

// AblationHeterogeneity (DESIGN.md A4) measures unlearning recovery
// under non-IID client data: shards drawn from Dirichlet(alpha) label
// distributions, the realistic IoV regime where each vehicle sees a
// biased slice of traffic. Each alpha requires its own training run.
func AblationHeterogeneity(scale Scale, seed uint64, alphas []float64) ([]AblationRow, error) {
	if len(alphas) == 0 {
		alphas = DefaultHeterogeneity
	}
	rows := make([]AblationRow, 0, len(alphas))
	for _, alpha := range alphas {
		s := scale
		s.DirichletAlpha = alpha
		dep, err := NewDeployment(Digits, NoAttack, s, seed)
		if err != nil {
			return nil, err
		}
		if err := dep.Train(); err != nil {
			return nil, fmt.Errorf("experiments: ablation heterogeneity α=%v: %w", alpha, err)
		}
		u, err := unlearn.New(dep.Store, unlearn.Config{
			PairSize:      s.PairSize,
			ClipThreshold: s.ClipThreshold,
			RefreshEvery:  s.RefreshEvery,
			LearningRate:  s.LearningRate,
			Telemetry:     s.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		res, err := u.Unlearn(dep.Forgotten()...)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation heterogeneity α=%v: %w", alpha, err)
		}
		setting := fmt.Sprintf("dirichlet α=%g", alpha)
		if alpha == 0 {
			setting = "iid"
		}
		rows = append(rows, AblationRow{
			Setting:  setting,
			Accuracy: metrics.AccuracyAt(dep.Template.Clone(), res.Params, dep.Test),
		})
	}
	return rows, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-20s %9s\n", "setting", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %9.3f\n", r.Setting, r.Accuracy)
	}
	return b.String()
}
