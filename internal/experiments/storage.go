package experiments

import (
	"fmt"
	"strings"

	"fuiov/internal/sign"
)

// StorageRow quantifies the paper's headline storage claim (§I, §VI:
// "spare approximately 95% of storage overhead") on a real training
// run.
type StorageRow struct {
	Dataset string
	// DirectionBytes is the measured footprint of the 2-bit packed
	// gradient directions.
	DirectionBytes int
	// FullGradientBytes is the measured footprint full float64
	// gradients would have needed (FedRecover's regime).
	FullGradientBytes int
	// ModelBytes is the (shared) cost of per-round model snapshots.
	ModelBytes int
	// MeasuredSavings is 1 − Direction/Full.
	MeasuredSavings float64
	// TheoreticalSavings64 and TheoreticalSavings32 are the analytic
	// 2-bit-vs-float savings.
	TheoreticalSavings64 float64
	TheoreticalSavings32 float64
}

// Storage trains one deployment per dataset and reports the measured
// gradient-storage savings of direction encoding.
func Storage(scale Scale, seed uint64) ([]StorageRow, error) {
	rows := make([]StorageRow, 0, 2)
	for _, kind := range []DatasetKind{Digits, Traffic} {
		dep, err := NewDeployment(kind, NoAttack, scale, seed)
		if err != nil {
			return nil, err
		}
		if err := dep.Train(); err != nil {
			return nil, fmt.Errorf("experiments: storage %s: %w", kind, err)
		}
		rep := dep.Store.Storage()
		rows = append(rows, StorageRow{
			Dataset:              kind.String(),
			DirectionBytes:       rep.DirectionBytes,
			FullGradientBytes:    rep.FullGradientBytes,
			ModelBytes:           rep.ModelBytes,
			MeasuredSavings:      rep.GradientSavings,
			TheoreticalSavings64: sign.Savings(64),
			TheoreticalSavings32: sign.Savings(32),
		})
	}
	return rows, nil
}

// FormatStorage renders the storage comparison.
func FormatStorage(rows []StorageRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Storage overhead — direction encoding vs full gradients\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %9s\n",
		"Dataset", "dir bytes", "full bytes", "model bytes", "savings")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12d %12d %12d %8.1f%%\n",
			r.Dataset, r.DirectionBytes, r.FullGradientBytes, r.ModelBytes,
			100*r.MeasuredSavings)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "theoretical: %.1f%% vs float64, %.1f%% vs float32 (paper claims ~95%%)\n",
			100*rows[0].TheoreticalSavings64, 100*rows[0].TheoreticalSavings32)
	}
	return b.String()
}
