package fuiov_test

import (
	"testing"

	"fuiov"
)

// TestPublicAPIEndToEnd drives the whole documented flow through the
// facade: train, record, attack-check, unlearn, recover, compare with
// a baseline — exactly what a downstream user would write.
func TestPublicAPIEndToEnd(t *testing.T) {
	const seed = 99
	data := fuiov.SynthDigits(fuiov.DefaultDigits(800, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), 8)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fuiov.Client, len(shards))
	for i, s := range shards {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: s}
	}
	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	full, err := fuiov.NewFullHistory(model.NumParams())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: 0.03,
		Seed:         seed,
		Store:        store,
		Recorders:    []fuiov.Recorder{full},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(60); err != nil {
		t.Fatal(err)
	}

	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate:  0.03,
		ClipThreshold: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.Unlearn(3)
	if err != nil {
		t.Fatal(err)
	}
	accRecovered := fuiov.AccuracyAt(model.Clone(), res.Params, test)
	accUnlearned := fuiov.AccuracyAt(model.Clone(), res.Unlearned, test)
	if accRecovered <= accUnlearned {
		t.Errorf("recovery did not improve: %.3f -> %.3f", accUnlearned, accRecovered)
	}
	dist, err := fuiov.ModelDistance(res.Params, res.Unlearned)
	if err != nil {
		t.Fatal(err)
	}
	if dist == 0 {
		t.Error("recovery left the model unchanged")
	}
}

func TestPublicAPIAttackAndIoV(t *testing.T) {
	// Backdoor helpers reachable through the facade.
	bd := fuiov.DefaultBackdoor()
	if bd.TargetClass != 2 || bd.PatchSize != 3 {
		t.Errorf("DefaultBackdoor = %+v", bd)
	}
	// IoV trace satisfies the Schedule interface.
	tr, err := fuiov.SimulateIoV(fuiov.IoVConfig{
		SegmentLength: 3000,
		RSU:           fuiov.RSU{Pos: 1500, Radius: 800},
		NumVehicles:   5,
		MinSpeed:      10,
		MaxSpeed:      30,
		RoundDuration: 20,
		Seed:          1,
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	var sched fuiov.Schedule = tr
	count := 0
	for round := 0; round < 20; round++ {
		if sched.Participates(0, round) {
			count++
		}
	}
	if count == 0 || count == 20 {
		t.Logf("vehicle 0 connected %d/20 rounds (static is possible but unusual)", count)
	}
}

func TestPublicAPIRSAAndDetection(t *testing.T) {
	const seed = 101
	data := fuiov.SynthDigits(fuiov.DefaultDigits(500, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), 5)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fuiov.Client, len(shards))
	for i, s := range shards {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: s}
	}
	model := fuiov.NewMLP(data.Dims.Size(), 16, data.Classes)
	model.Init(fuiov.NewRNG(seed))

	// RSA protocol reachable through the facade.
	rsa, err := fuiov.NewRSASimulation(model, clients, fuiov.RSAConfig{
		LearningRate: 0.01, Lambda: 0.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rsa.Run(30); err != nil {
		t.Fatal(err)
	}
	if acc := fuiov.Accuracy(rsa.ServerModel(), test); acc <= 0 {
		t.Errorf("rsa accuracy = %v", acc)
	}

	// Detectors and robust aggregators compose in SimConfig.
	det := fuiov.NewCosineDetector()
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: 0.05, Seed: seed,
		Aggregator: fuiov.Median{},
		Recorders:  []fuiov.Recorder{det},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(det.Scores()) != 5 {
		t.Errorf("detector saw %d clients", len(det.Scores()))
	}

	// Confusion matrix through the facade.
	c, err := fuiov.ConfusionMatrix(sim.GlobalModel(), test)
	if err != nil {
		t.Fatal(err)
	}
	if c.Classes != data.Classes {
		t.Errorf("confusion classes = %d", c.Classes)
	}
}

func TestPublicAPICommit(t *testing.T) {
	const seed = 102
	data := fuiov.SynthDigits(fuiov.DefaultDigits(400, seed))
	train, _ := data.Split(fuiov.NewRNG(seed), 0.9)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), 4)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fuiov.Client, len(shards))
	for i, s := range shards {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: s}
	}
	model := fuiov.NewMLP(data.Dims.Size(), 16, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: 0.05, Seed: seed, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(15); err != nil {
		t.Fatal(err)
	}
	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate: 0.05, ClipThreshold: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rewritten, err := u.UnlearnAndCommit(2)
	if err != nil {
		t.Fatal(err)
	}
	if rewritten.Rounds() != 15 {
		t.Errorf("rewritten rounds = %d", rewritten.Rounds())
	}
	if _, err := rewritten.JoinRound(2); err == nil {
		t.Error("committed store still knows client 2")
	}
}
