GO ?= go

.PHONY: all build test race vet fmt check bench test-faults

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass; the dedicated concurrency tests
# (internal/fl/race_test.go and the telemetry suite) are written to
# exercise the parallel round loop and concurrent store reads here.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Fault-tolerance suite under the race detector: injected faults,
# retry/deadline/quorum handling and context cancellation across the
# round engine, unlearner and baselines.
test-faults:
	$(GO) test -race -run 'Fault|Quorum|Corrupt|Cancel|Bootstrap|Legacy|Sentinel' \
		./internal/faults/ ./internal/fl/ ./internal/unlearn/ ./internal/baselines/ ./internal/iov/ .

# check is the tier-1 verification path: formatting, static analysis,
# build and the full test suite.
check: fmt vet build test

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...
