GO ?= go

.PHONY: all build test race vet fmt check bench bench-sign bench-strategies bench-scale bench-unlearn bench-verify bench-all test-faults

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass; the dedicated concurrency tests
# (internal/fl/race_test.go and the telemetry suite) are written to
# exercise the parallel round loop and concurrent store reads here.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Fault-tolerance suite under the race detector: injected faults,
# retry/deadline/quorum handling and context cancellation across the
# round engine, unlearner and baselines.
test-faults:
	$(GO) test -race -run 'Fault|Quorum|Corrupt|Cancel|Bootstrap|Legacy|Sentinel' \
		./internal/faults/ ./internal/fl/ ./internal/unlearn/ ./internal/baselines/ ./internal/iov/ .

# check is the tier-1 verification path: formatting, static analysis,
# build and the full test suite.
check: fmt vet build test

# bench runs the compute-kernel micro-benchmarks and records the
# results in BENCH_kernels.json (see scripts/bench.sh).
bench:
	scripts/bench.sh

# bench-sign runs the sign-kernel and history-tier micro-benchmarks
# (compress, LUT expand, packed accumulate, record round, spilled
# reads) and records the results in BENCH_sign.json.
bench-sign:
	scripts/bench.sh -sign

# bench-strategies runs the comparative unlearning harness — every
# registered unlearn.Strategy on one seeded CI-scale scenario — and
# records the per-strategy table in BENCH_strategies.json.
bench-strategies:
	scripts/bench.sh -strategies

# bench-scale runs the streamed sharded-aggregation scale sweep —
# fleets of 10k/100k/1M clients folded through fl.ShardedFedAvg with
# flat accumulator memory — and records the table in BENCH_scale.json.
bench-scale:
	scripts/bench.sh -scale

# bench-unlearn runs the concurrent-unlearning service benchmark —
# training throughput while a recovery pass chases the live tip, and
# coalesced-vs-sequential latency for K queued forget requests — and
# records the results in BENCH_unlearn.json.
bench-unlearn:
	scripts/bench.sh -unlearn

# bench-verify runs the forgetting-verification harness — every
# registered strategy erases the malicious clients of a backdoored
# CI-scale deployment, scored by shadow-model membership inference,
# backdoor retention and relearn time — and records the per-strategy
# scorecards in BENCH_verify.json.
bench-verify:
	scripts/bench.sh -verify

# bench-all sweeps every benchmark in the repo, including the
# experiment-scale ones, without writing the JSON record.
bench-all:
	$(GO) test -bench . -benchmem -run '^$$' ./...
