GO ?= go

.PHONY: all build test race vet fmt check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass; the dedicated concurrency tests
# (internal/fl/race_test.go and the telemetry suite) are written to
# exercise the parallel round loop and concurrent store reads here.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# check is the tier-1 verification path: formatting, static analysis,
# build and the full test suite.
check: fmt vet build test

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...
