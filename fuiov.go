package fuiov

import (
	"context"
	"io"
	"time"

	"fuiov/internal/agent"
	"fuiov/internal/attack"
	"fuiov/internal/baselines"
	"fuiov/internal/dataset"
	"fuiov/internal/detect"
	"fuiov/internal/faults"
	"fuiov/internal/fl"
	"fuiov/internal/history"
	"fuiov/internal/iov"
	"fuiov/internal/metrics"
	"fuiov/internal/nn"
	"fuiov/internal/rng"
	"fuiov/internal/server"
	"fuiov/internal/telemetry"
	"fuiov/internal/unlearn"
	"fuiov/internal/unlearn/strategy"
	"fuiov/internal/verify"
)

// ---- Randomness ----

// RNG is the deterministic random source used throughout the library.
type RNG = rng.RNG

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// ---- Models ----

// Network is a trainable neural network with flat parameter vectors.
type Network = nn.Network

// Dims describes a sample shape (channels, height, width).
type Dims = nn.Dims

// NewDigitsCNN returns the paper's MNIST-style model (2 conv + 2 FC).
func NewDigitsCNN(img, classes int) *Network { return nn.NewDigitsCNN(img, classes) }

// NewTrafficCNN returns the paper's GTSRB-style model (2 conv + 1 FC).
func NewTrafficCNN(img, classes int) *Network { return nn.NewTrafficCNN(img, classes) }

// NewMLP returns a fully connected ReLU network with the given layer
// sizes.
func NewMLP(sizes ...int) *Network { return nn.NewMLP(sizes...) }

// ---- Datasets ----

// Dataset is an in-memory labelled image set.
type Dataset = dataset.Dataset

// SynthConfig parameterises the synthetic dataset generators.
type SynthConfig = dataset.SynthConfig

// DefaultDigits returns the MNIST stand-in configuration.
func DefaultDigits(samples int, seed uint64) SynthConfig {
	return dataset.DefaultDigits(samples, seed)
}

// DefaultTraffic returns the GTSRB stand-in configuration.
func DefaultTraffic(samples int, seed uint64) SynthConfig {
	return dataset.DefaultTraffic(samples, seed)
}

// SynthDigits generates the MNIST stand-in dataset.
func SynthDigits(cfg SynthConfig) *Dataset { return dataset.SynthDigits(cfg) }

// SynthTraffic generates the GTSRB stand-in dataset.
func SynthTraffic(cfg SynthConfig) *Dataset { return dataset.SynthTraffic(cfg) }

// PartitionIID splits a dataset into n near-equal shuffled shards.
func PartitionIID(d *Dataset, r *RNG, n int) ([]*Dataset, error) {
	return dataset.PartitionIID(d, r, n)
}

// PartitionDirichlet splits a dataset into n label-skewed shards with
// Dirichlet concentration alpha.
func PartitionDirichlet(d *Dataset, r *RNG, n int, alpha float64) ([]*Dataset, error) {
	return dataset.PartitionDirichlet(d, r, n, alpha)
}

// ---- Federated learning ----

// ClientID identifies a vehicle in the federation.
type ClientID = history.ClientID

// Client is one vehicle with a private data shard.
type Client = fl.Client

// Simulation runs synchronous federated rounds.
type Simulation = fl.Simulation

// SimConfig parameterises a Simulation.
type SimConfig = fl.Config

// Schedule decides per-round client participation.
type Schedule = fl.Schedule

// Interval is a [Join, Leave) participation window.
type Interval = fl.Interval

// IntervalSchedule maps clients to participation intervals.
type IntervalSchedule = fl.IntervalSchedule

// FuncSchedule adapts a function to the Schedule interface.
type FuncSchedule = fl.FuncSchedule

// Aggregator combines client gradients into a global update.
type Aggregator = fl.Aggregator

// Recorder observes each round's model, gradients and weights.
type Recorder = fl.Recorder

// FedAvg is the paper's dataset-size-weighted aggregation rule.
type FedAvg = fl.FedAvg

// Median is the Byzantine-robust coordinate-wise median rule.
type Median = fl.Median

// TrimmedMean drops extremes per coordinate before averaging.
type TrimmedMean = fl.TrimmedMean

// Krum selects the gradient closest to its nearest neighbours.
type Krum = fl.Krum

// SignAggregator is the RSA-style sign-sum rule (§III-C of the paper).
type SignAggregator = fl.SignAggregator

// NewSimulation creates a federated simulation starting from the
// template's current parameters.
func NewSimulation(template *Network, clients []*Client, cfg SimConfig) (*Simulation, error) {
	return fl.NewSimulation(template, clients, cfg)
}

// StreamAggregator folds uploads into fixed accumulators on arrival
// instead of buffering a cohort (DESIGN.md §15).
type StreamAggregator = fl.StreamAggregator

// ShardedFedAvg is the streaming weighted-mean aggregator: P hashed
// shard accumulators, fixed-order tree resolve.
type ShardedFedAvg = fl.ShardedFedAvg

// NewShardedFedAvg creates a streaming accumulator with dim parameters
// and the given shard count.
func NewShardedFedAvg(dim, shards int) (*ShardedFedAvg, error) {
	return fl.NewShardedFedAvg(dim, shards)
}

// ShardOf reports the shard an upload from id folds into.
func ShardOf(id ClientID, shards int) int { return fl.ShardOf(id, shards) }

// Sampler draws seeded K-of-N round cohorts without per-client maps.
type Sampler = fl.Sampler

// RoundStream is an open streamed round accepting out-of-band uploads
// (the networked coordinator's fold-on-arrival handle).
type RoundStream = fl.RoundStream

// ErrNotStreamable reports an aggregator that cannot stream (robust
// rules need the full cohort retained).
var ErrNotStreamable = fl.ErrNotStreamable

// ErrDuplicateUpload reports a second upload from one client in a
// streamed round.
var ErrDuplicateUpload = fl.ErrDuplicateUpload

// RSASimulation runs the RSA protocol of §III-C (eq. 3–4): clients
// keep personal models and only element signs reach the server.
type RSASimulation = fl.RSASimulation

// RSAConfig parameterises an RSASimulation.
type RSAConfig = fl.RSAConfig

// NewRSASimulation initialises the RSA protocol from the template's
// parameters.
func NewRSASimulation(template *Network, clients []*Client, cfg RSAConfig) (*RSASimulation, error) {
	return fl.NewRSASimulation(template, clients, cfg)
}

// ---- Fault injection and tolerance ----

// FaultOutcome is one injected client-attempt outcome: a crash, an
// added upload latency, a corrupted upload, or any combination.
type FaultOutcome = faults.Outcome

// FaultInjector decides the FaultOutcome of every (client, round,
// attempt) triple. Implementations must be pure functions of their
// arguments so simulations stay deterministic at any parallelism.
type FaultInjector = faults.Injector

// FaultFunc adapts a plain function to the FaultInjector interface.
type FaultFunc = faults.Func

// FaultSpec describes one client's failure distribution: crash
// probability, flaky period, latency range and corruption probability.
type FaultSpec = faults.Spec

// FaultPlan is a seeded, deterministic FaultInjector with a default
// FaultSpec and optional per-client overrides.
type FaultPlan = faults.Plan

// NewFaultPlan creates a fault plan whose outcomes are a pure function
// of (seed, client, round, attempt).
func NewFaultPlan(seed uint64, spec FaultSpec) *FaultPlan { return faults.NewPlan(seed, spec) }

// FaultPolicy tells the round engine how to cope with unreliable
// clients: per-client deadlines, bounded retry with exponential
// backoff, and quorum-based graceful degradation. A nil policy keeps
// the strict legacy behaviour (any failure aborts the round).
type FaultPolicy = fl.FaultPolicy

// Sentinel errors surfaced by the fault-tolerant round engine, the
// history store and unlearning. Returned errors wrap them, so test
// with errors.Is.
var (
	// ErrClientCrash marks a client attempt lost to a crash.
	ErrClientCrash = fl.ErrClientCrash
	// ErrClientTimeout marks a straggler cut off by the per-client
	// deadline.
	ErrClientTimeout = fl.ErrClientTimeout
	// ErrCorruptUpload marks an upload rejected by validation.
	ErrCorruptUpload = fl.ErrCorruptUpload
	// ErrQuorumNotReached marks a round abandoned because too few
	// scheduled clients responded; the round clock does not advance.
	ErrQuorumNotReached = fl.ErrQuorumNotReached
	// ErrUnknownClient marks a history lookup of a client that never
	// participated.
	ErrUnknownClient = history.ErrUnknownClient
	// ErrNoHistory marks an unlearning or recovery attempt over an
	// empty history store.
	ErrNoHistory = history.ErrNoHistory
	// ErrNoRecord marks a history lookup with no stored record.
	ErrNoRecord = history.ErrNoRecord
	// ErrBadFormat marks a snapshot stream rejected by LoadStore:
	// corrupt, truncated, or not a store snapshot at all.
	ErrBadFormat = history.ErrBadFormat
)

// ---- History ----

// Store is the server-side history log: per-round models, 2-bit
// gradient directions and membership records.
type Store = history.Store

// HistoryReader is the read-only surface shared by Store and
// HistoryView; the Unlearner recovers from any implementation.
type HistoryReader = history.Reader

// HistoryView is a copy-on-write snapshot of a Store: it serves a
// frozen round prefix while RecordRound keeps appending to the parent.
// Obtain one with Store.View.
type HistoryView = history.View

// Membership is a client's recorded participation interval.
type Membership = history.Membership

// StorageReport summarises a Store's footprint: packed-direction
// bytes, model snapshot bytes split into resident and spilled, and the
// savings versus storing full float64 gradients.
type StorageReport = history.StorageReport

// StoreOption configures optional Store behaviour (see WithSpill and
// WithSpillCache).
type StoreOption = history.StoreOption

// WithSpill bounds the store's resident snapshot memory: models older
// than the newest window rounds spill to an unlinked scratch file
// under dir (the OS temp dir when empty) and are read back on demand.
// Recovery results are bit-identical with spilling on or off.
func WithSpill(dir string, window int) StoreOption { return history.WithSpill(dir, window) }

// WithSpillCache sets how many recently-read spilled rounds stay
// decoded in RAM (default 4; 0 disables the cache).
func WithSpillCache(rounds int) StoreOption { return history.WithSpillCache(rounds) }

// NewStore creates a history store for dim-parameter models with
// direction threshold delta. Options enable the bounded-memory
// snapshot tier; call Store.Close when done if one is used.
func NewStore(dim int, delta float64, opts ...StoreOption) (*Store, error) {
	return history.NewStore(dim, delta, opts...)
}

// LoadStore parses a snapshot previously written with Store.Save,
// restoring models, 2-bit directions and membership records. Options
// apply to the restored store exactly as with NewStore.
func LoadStore(r io.Reader, opts ...StoreOption) (*Store, error) { return history.Load(r, opts...) }

// ---- Unlearning (the paper's contribution) ----

// Unlearner executes backtracking and server-side recovery.
type Unlearner = unlearn.Unlearner

// UnlearnConfig parameterises the scheme; zero values select the
// paper's defaults (s=2, L=1, refresh=21, elementwise clipping).
type UnlearnConfig = unlearn.Config

// UnlearnResult describes a completed unlearning operation.
type UnlearnResult = unlearn.Result

// ClipMode selects the gradient-limiting formula.
type ClipMode = unlearn.ClipMode

// Clip modes.
const (
	ClipElementwise = unlearn.ClipElementwise
	ClipNorm        = unlearn.ClipNorm
	ClipOff         = unlearn.ClipOff
)

// NewUnlearner creates an Unlearner over a history store.
func NewUnlearner(store *Store, cfg UnlearnConfig) (*Unlearner, error) {
	return unlearn.New(store, cfg)
}

// UnlearnCommitPass is an in-progress unlearning pass that rewrites
// the history into a fresh store incrementally while the original
// keeps recording rounds; see Unlearner.BeginCommit. Its committed
// result is bit-identical to a stop-the-world UnlearnAndCommit over
// the final history.
type UnlearnCommitPass = unlearn.CommitPass

// UnlearnQueue serialises asynchronous unlearning requests behind a
// single worker: pending requests coalesce into one backtrack-and-
// recovery pass, duplicate client sets dedup onto the pending request,
// and training rounds keep committing while a pass runs.
type UnlearnQueue = unlearn.Queue

// UnlearnQueueConfig configures an UnlearnQueue.
type UnlearnQueueConfig = unlearn.QueueConfig

// UnlearnQueueCommit is the rewritten store and result a queue pass
// hands to its CommitFunc for installation.
type UnlearnQueueCommit = unlearn.QueueCommit

// UnlearnQueueStats is an UnlearnQueue's live counters.
type UnlearnQueueStats = unlearn.QueueStats

// UnlearnRequestInfo describes one queued request's lifecycle state.
type UnlearnRequestInfo = unlearn.RequestInfo

// NewUnlearnQueue creates an unlearning request queue; see
// unlearn.QueueConfig for the required hooks.
func NewUnlearnQueue(cfg UnlearnQueueConfig) (*UnlearnQueue, error) {
	return unlearn.NewQueue(cfg)
}

// ---- Unlearning strategies ----

// UnlearnStrategy is one unlearning algorithm selectable by name:
// Name() is the registry key, Needs() declares the required inputs,
// and Unlearn erases the requested clients. Seven strategies register
// themselves at init: "paper" (the paper's 2-bit-direction scheme),
// "retrain", "fedrecover", "fedrecovery", "federaser", "pga" and
// "not". See internal/unlearn/strategy and DESIGN.md §14.
type UnlearnStrategy = strategy.Strategy

// UnlearnRequest carries everything any registered strategy might
// need; callers fill what their deployment has and each strategy
// validates the subset it declares via Needs.
type UnlearnRequest = strategy.Request

// StrategyResult is the common result shape every strategy produces:
// the unlearned model plus comparable cost accounting (rounds
// replayed, storage read, client work demanded).
type StrategyResult = strategy.Result

// StrategyNeeds is a strategy's capability bitmask: the request inputs
// it requires (direction store, full history, clients, template,
// final parameters).
type StrategyNeeds = strategy.Needs

// Strategy capability flags.
const (
	NeedsDirectionStore = strategy.NeedsDirectionStore
	NeedsFullHistory    = strategy.NeedsFullHistory
	NeedsClients        = strategy.NeedsClients
	NeedsTemplate       = strategy.NeedsTemplate
	NeedsFinalParams    = strategy.NeedsFinalParams
)

// ErrUnknownStrategy reports an unlearning request against a name no
// strategy registered under.
var ErrUnknownStrategy = strategy.ErrUnknownStrategy

// ErrStrategyMissingInput reports an unlearning request that lacks an
// input the selected strategy requires (e.g. "federaser" without a
// full-gradient history).
var ErrStrategyMissingInput = strategy.ErrMissingInput

// Unlearn erases req.Forgotten with the named strategy — the single
// entry point the cmd binaries and POST /v1/unlearn dispatch through.
// It validates req against the strategy's needs, honours ctx
// cancellation at round boundaries, and leaves the request's stores
// and clients unmodified.
func Unlearn(ctx context.Context, name string, req UnlearnRequest) (*StrategyResult, error) {
	return strategy.Unlearn(ctx, name, req)
}

// StrategyNames lists every registered unlearning strategy, sorted.
func StrategyNames() []string { return strategy.Names() }

// LookupStrategy returns the strategy registered under name, or
// ErrUnknownStrategy.
func LookupStrategy(name string) (UnlearnStrategy, error) { return strategy.Lookup(name) }

// RegisterStrategy adds a custom strategy under its Name(); duplicate
// names are an error.
func RegisterStrategy(s UnlearnStrategy) error { return strategy.Register(s) }

// ---- Networked serving ----

// RSUCoordinator serves the RSU round protocol over HTTP: vehicles
// fetch the global model, upload gradients (dense or sign-compressed),
// and the coordinator commits rounds through the deterministic
// engine's own path, so HTTP-served schedules produce bit-identical
// models to in-process simulations. It implements http.Handler; mount
// it on any http.Server. The wire protocol is specified in
// PROTOCOL.md.
type RSUCoordinator = server.Coordinator

// RSUConfig parameterises an RSUCoordinator: the engine it fronts,
// the expected-client schedule, the wall-clock collection window, the
// training horizon, and /v1/unlearn's unlearning configuration.
type RSUConfig = server.Config

// NewRSUCoordinator creates a coordinator over a deterministic
// Simulation. The simulation's registered clients become the server's
// client registry, its FaultPolicy supplies quorum and deadline
// semantics against wall-clock time, and its Store receives every
// committed round.
func NewRSUCoordinator(cfg RSUConfig) (*RSUCoordinator, error) { return server.New(cfg) }

// RSURoutes lists every method+pattern an RSUCoordinator registers,
// in the order PROTOCOL.md documents them.
func RSURoutes() []string { return server.Routes() }

// VehicleAgent is the client side of the RSU protocol: one vehicle
// that follows a coordinator's round clock over HTTP, computes
// gradients on its private shard, and uploads them when its mobility
// schedule says it is in coverage.
type VehicleAgent = agent.Agent

// VehicleAgentConfig parameterises a VehicleAgent. Seed must match
// the coordinator engine's seed for networked rounds to reproduce
// in-process ones bit-identically.
type VehicleAgentConfig = agent.Config

// NewVehicleAgent creates an agent; VehicleAgent.Run drives it.
func NewVehicleAgent(cfg VehicleAgentConfig) (*VehicleAgent, error) { return agent.New(cfg) }

// UploadEncoding selects how a gradient upload is serialised on the
// wire: exact float64s or the lossy 2-bit sign compression.
type UploadEncoding = server.Encoding

// Upload encodings.
const (
	// EncodingDense ships exact float64 gradients (byte-exact; the
	// bit-identity path).
	EncodingDense = server.EncodingDense
	// EncodingSign ships thresholded 2-bit directions plus a scale —
	// a 32× smaller upload carrying sign(g)·scale (lossy).
	EncodingSign = server.EncodingSign
)

// ParseUploadEncoding maps the flag/wire names "dense" and "sign"
// back to an UploadEncoding.
func ParseUploadEncoding(s string) (UploadEncoding, error) { return server.ParseEncoding(s) }

// WallClock measures a FaultPolicy's deadlines, retry backoff and
// quorum against real time — the serving layer's view of the same
// semantics the round engine applies to simulated time.
type WallClock = fl.WallClock

// NewWallClock builds a WallClock over a policy; now substitutes the
// clock for tests (nil means time.Now).
func NewWallClock(p *FaultPolicy, now func() time.Time) WallClock { return p.WallClock(now) }

// Networked-layer sentinel errors.
var (
	// ErrBadFrame marks a binary wire frame rejected by a reader.
	ErrBadFrame = server.ErrBadFrame
	// ErrServerClosed marks requests arriving after
	// RSUCoordinator.Close.
	ErrServerClosed = server.ErrClosed
)

// ---- Attacks ----

// Poisoner transforms a client's shard into a poisoned counterpart.
type Poisoner = attack.Poisoner

// LabelFlip relabels a source class to a target class.
type LabelFlip = attack.LabelFlip

// Backdoor stamps a trigger patch and relabels to a target class.
type Backdoor = attack.Backdoor

// DefaultBackdoor returns the paper's 3×3 trigger targeting class 2.
func DefaultBackdoor() *Backdoor { return attack.DefaultBackdoor() }

// FlipSuccessRate measures a label-flip attack's success rate on a
// test set.
func FlipSuccessRate(net *Network, test *Dataset, source, target int) float64 {
	return attack.FlipSuccessRate(net, test, source, target)
}

// ---- Baselines ----

// FullHistory records complete float64 gradients (the storage regime
// of FedRecover/FedRecovery).
type FullHistory = baselines.FullHistory

// RetrainConfig parameterises the train-from-scratch baseline.
type RetrainConfig = baselines.RetrainConfig

// FedRecoverConfig parameterises the FedRecover baseline.
type FedRecoverConfig = baselines.FedRecoverConfig

// FedRecoveryConfig parameterises the FedRecovery baseline.
type FedRecoveryConfig = baselines.FedRecoveryConfig

// NewFullHistory creates a full-gradient recorder.
func NewFullHistory(dim int) (*FullHistory, error) { return baselines.NewFullHistory(dim) }

// FedRecoverResult carries FedRecover's recovered model and its
// client-side cost tallies (exact calls, retries, offline fallbacks).
type FedRecoverResult = baselines.FedRecoverResult

// Retrain trains a fresh model on all clients except the forgotten
// ones — the gold-standard unlearning result exact methods are
// compared against.
//
// Deprecated: use Unlearn(ctx, "retrain", UnlearnRequest{...}) — the
// strategy layer gives every algorithm one entry point, selectable at
// runtime.
func Retrain(template *Network, clients []*Client, forgotten []ClientID, cfg RetrainConfig) ([]float64, error) {
	return baselines.Retrain(template, clients, forgotten, cfg)
}

// RetrainContext is Retrain honouring context cancellation: training
// stops at the next round boundary with the context's error.
//
// Deprecated: use Unlearn(ctx, "retrain", UnlearnRequest{...}).
func RetrainContext(ctx context.Context, template *Network, clients []*Client, forgotten []ClientID, cfg RetrainConfig) ([]float64, error) {
	return baselines.RetrainContext(ctx, template, clients, forgotten, cfg)
}

// FedRecover recovers using full stored gradients plus periodic exact
// client corrections (Cao et al., S&P'23). Set
// FedRecoverConfig.FaultPolicy to let corrections degrade to the
// estimated path when clients are unreachable.
//
// Deprecated: use Unlearn(ctx, "fedrecover", UnlearnRequest{...}).
func FedRecover(full *FullHistory, template *Network, clients []*Client, forgotten []ClientID, cfg FedRecoverConfig) (*FedRecoverResult, error) {
	return baselines.FedRecover(full, template, clients, forgotten, cfg)
}

// FedRecoverContext is FedRecover honouring context cancellation:
// recovery stops at the next replayed-round boundary with the
// context's error.
//
// Deprecated: use Unlearn(ctx, "fedrecover", UnlearnRequest{...}).
func FedRecoverContext(ctx context.Context, full *FullHistory, template *Network, clients []*Client, forgotten []ClientID, cfg FedRecoverConfig) (*FedRecoverResult, error) {
	return baselines.FedRecoverContext(ctx, full, template, clients, forgotten, cfg)
}

// FedRecovery removes the forgotten clients' first-order influence
// from the final model and adds Gaussian noise (Zhang et al.,
// TIFS'23).
//
// Deprecated: use Unlearn(ctx, "fedrecovery", UnlearnRequest{...})
// with UnlearnRequest.Noise as the Gaussian σ.
func FedRecovery(full *FullHistory, finalParams []float64, forgotten []ClientID, cfg FedRecoveryConfig) ([]float64, error) {
	return baselines.FedRecovery(full, finalParams, forgotten, cfg)
}

// FedRecoveryContext is FedRecovery honouring context cancellation:
// the pass stops at the next replayed-round boundary with the
// context's error.
//
// Deprecated: use Unlearn(ctx, "fedrecovery", UnlearnRequest{...}).
func FedRecoveryContext(ctx context.Context, full *FullHistory, finalParams []float64, forgotten []ClientID, cfg FedRecoveryConfig) ([]float64, error) {
	return baselines.FedRecoveryContext(ctx, full, finalParams, forgotten, cfg)
}

// ---- Detection ----

// CosineDetector flags clients whose uploads oppose the (median)
// consensus direction.
type CosineDetector = detect.CosineDetector

// ConsistencyDetector flags clients whose uploads deviate from their
// L-BFGS-predicted evolution (FLDetector-style).
type ConsistencyDetector = detect.ConsistencyDetector

// DetectionScore is a client's accumulated suspicion statistic.
type DetectionScore = detect.Score

// NewCosineDetector returns a cosine-similarity detector.
func NewCosineDetector() *CosineDetector { return detect.NewCosineDetector() }

// NewConsistencyDetector returns an FLDetector-style detector.
func NewConsistencyDetector() *ConsistencyDetector { return detect.NewConsistencyDetector() }

// ---- Forgetting verification ----

// VerifyConfig tunes the forgetting-verification suite (shadow-model
// count, relearn cap, …); its zero value selects the suite defaults.
type VerifyConfig = verify.Config

// VerifyTarget describes the trained federation an unlearning
// strategy ran against: architecture, clients, the forgotten set, the
// clean test set and the pre-unlearn model.
type VerifyTarget = verify.Target

// ForgettingScore is one unlearned model's forgetting scorecard:
// membership-inference advantage before/after unlearning, backdoor
// retention across the unlearn/relearn lifecycle, and
// relearn-time-to-recover.
type ForgettingScore = verify.Score

// VerifySuite holds the fitted membership attack and the pre-unlearn
// measurements so several strategies can be scored against one shadow
// fit. Build it with NewVerifySuite, score with its Score method.
type VerifySuite = verify.Suite

// NewVerifySuite trains the shadow models, fits the membership attack
// and scores the pre-unlearn model once, for reuse across strategies.
func NewVerifySuite(ctx context.Context, tgt VerifyTarget, cfg VerifyConfig) (*VerifySuite, error) {
	return verify.NewSuite(ctx, tgt, cfg)
}

// VerifyUnlearning scores one unlearned model (the after parameters)
// against a target federation: shadow-model membership inference,
// backdoor retention and relearn time (DESIGN.md §17). Callers
// comparing several strategies should use NewVerifySuite instead and
// amortize the shadow fit.
func VerifyUnlearning(ctx context.Context, tgt VerifyTarget, cfg VerifyConfig, after []float64) (ForgettingScore, error) {
	return verify.Run(ctx, tgt, cfg, after)
}

// ---- IoV mobility ----

// Vehicle is a moving client on the highway.
type Vehicle = iov.Vehicle

// RSU is a road-side unit with limited radio coverage.
type RSU = iov.RSU

// IoVConfig describes a highway connectivity scenario.
type IoVConfig = iov.Config

// Trace is a per-round connectivity record implementing Schedule.
type Trace = iov.Trace

// SimulateIoV rolls a highway scenario forward and returns its
// connectivity trace.
func SimulateIoV(cfg IoVConfig, rounds int) (*Trace, error) { return iov.Simulate(cfg, rounds) }

// ---- Telemetry ----

// Telemetry is a metrics registry: counters, gauges and phase timers
// that the simulation, history store, unlearner, baselines and the
// networked serving layer (RSUCoordinator request counters and
// latency timers, VehicleAgent round/retry counters) report into when
// one is attached via the Telemetry fields of their configs (or
// Store.SetTelemetry / FullHistory.SetTelemetry). A nil *Telemetry
// disables all instrumentation at negligible cost.
type Telemetry = telemetry.Registry

// TelemetryEvent is one structured per-round record emitted to an
// attached observer.
type TelemetryEvent = telemetry.Event

// TelemetryObserver receives per-round events.
type TelemetryObserver = telemetry.Observer

// TelemetrySnapshot is a point-in-time copy of every metric.
type TelemetrySnapshot = telemetry.Snapshot

// NewTelemetry creates an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewJSONTelemetryObserver streams telemetry events as JSON lines to
// w, one object per event.
func NewJSONTelemetryObserver(w io.Writer) TelemetryObserver { return telemetry.NewJSONObserver(w) }

// NewTextTelemetryObserver streams telemetry events as aligned
// human-readable text lines to w.
func NewTextTelemetryObserver(w io.Writer) TelemetryObserver { return telemetry.NewTextObserver(w) }

// StartProfiles begins CPU profiling to prefix+".cpu.pb.gz" and
// returns a stop function that ends it and writes a heap profile to
// prefix+".heap.pb.gz".
func StartProfiles(prefix string) (stop func() error, err error) {
	return telemetry.StartProfiles(prefix)
}

// ---- Metrics ----

// Accuracy evaluates a network on a dataset.
func Accuracy(net *Network, d *Dataset) float64 { return metrics.Accuracy(net, d) }

// AccuracyAt evaluates a network with the given flat parameters.
func AccuracyAt(net *Network, params []float64, d *Dataset) float64 {
	return metrics.AccuracyAt(net, params, d)
}

// ModelDistance returns the L2 distance between two parameter vectors.
func ModelDistance(a, b []float64) (float64, error) { return metrics.ModelDistance(a, b) }

// Confusion is a confusion matrix with per-class diagnostics.
type Confusion = metrics.Confusion

// ConfusionMatrix tallies predictions per true class.
func ConfusionMatrix(net *Network, d *Dataset) (*Confusion, error) {
	return metrics.ConfusionMatrix(net, d)
}
