// Command fuiov-rsu runs the road-side unit as a real network service:
// an HTTP round coordinator in front of the deterministic federated
// engine, speaking the wire protocol of PROTOCOL.md. Vehicles are
// client agents that fetch the global model, compute gradients on
// their private traffic-sign shards, and upload them (dense or
// sign-compressed) whenever the mobility trace puts them inside RSU
// coverage. Rounds resolve against wall-clock collection windows with
// the fault policy's quorum; after the horizon, the demo erases a
// dropout vehicle through POST /v1/unlearn — backtracking plus
// server-side recovery over the same store a simulation would use.
//
// By default the binary is a self-contained loopback demo: it serves
// on -addr and drives -vehicles in-process agents against itself.
// With -agents=false it only serves, for external agents that share
// the same seed and scenario.
//
// Usage:
//
//	fuiov-rsu [-addr host:port] [-vehicles N] [-rounds T] [-seed S]
//	          [-lr F] [-window D] [-quorum F] [-client-timeout D] [-retries K]
//	          [-encoding dense|sign] [-delta F] [-agents=false]
//	          [-streaming [-stream-shards P]]
//	          [-spill-window W [-spill-dir d]] [-metrics json|text] [-profile prefix]
//	          [-strategy name]
//
// -strategy is sent as the strategy field of POST /v1/unlearn, so the
// coordinator erases the dropout vehicle with that algorithm (default
// "paper"; fuiov.StrategyNames lists the registry).
//
// -streaming switches the engine to streamed sharded aggregation
// (DESIGN.md §15): each upload folds into one of -stream-shards
// accumulators inside the handler instead of being buffered to the
// round barrier, so collection memory is O(shards × dim) no matter the
// fleet size; GET /v1/status reports the live folded count.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"fuiov"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fuiov-rsu:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fuiov-rsu", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	vehicles := fs.Int("vehicles", 12, "fleet size")
	rounds := fs.Int("rounds", 40, "federated rounds (training horizon)")
	seed := fs.Uint64("seed", 7, "root random seed (agents must share it)")
	lr := fs.Float64("lr", 0.12, "learning rate")
	window := fs.Duration("window", 2*time.Second, "wall-clock collection window per round")
	quorum := fs.Float64("quorum", 0.5, "minimum responding fraction per round")
	clientTimeout := fs.Duration("client-timeout", 0, "per-attempt upload deadline (0 = use -window)")
	retries := fs.Int("retries", 2, "agent retry budget for transient transport failures")
	encodingName := fs.String("encoding", "dense", `upload encoding: "dense" (bit-exact) or "sign" (lossy, 32x smaller)`)
	delta := fs.Float64("delta", 1e-6, "sign-compression threshold (-encoding sign)")
	agents := fs.Bool("agents", true, "drive in-process loopback agents (false = serve only)")
	streaming := fs.Bool("streaming", false, "fold uploads into sharded accumulators on arrival (flat collection memory)")
	streamShards := fs.Int("stream-shards", 0, "shard accumulator count for -streaming (0 = parallelism default)")
	uploadDelay := fs.Duration("upload-delay", 0, "artificial straggler delay before every agent upload")
	spillWindow := fs.Int("spill-window", 0, "keep only this many model snapshots in RAM (0 = all in RAM)")
	spillDir := fs.String("spill-dir", "", "directory for the snapshot spill file (needs -spill-window)")
	metricsMode := fs.String("metrics", "", `print a final metrics snapshot to stderr: "json" or "text"`)
	profile := fs.String("profile", "", "write CPU/heap pprof profiles with this path prefix")
	strategyName := fs.String("strategy", "paper", fmt.Sprintf("unlearning strategy for the demo erasure (one of %v)", fuiov.StrategyNames()))
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spillDir != "" && *spillWindow <= 0 {
		return fmt.Errorf("-spill-dir requires -spill-window > 0")
	}
	encoding, err := fuiov.ParseUploadEncoding(*encodingName)
	if err != nil {
		return err
	}
	var reg *fuiov.Telemetry
	switch *metricsMode {
	case "":
	case "json", "text":
		reg = fuiov.NewTelemetry()
	default:
		return fmt.Errorf("unknown -metrics mode %q (want json or text)", *metricsMode)
	}
	if *profile != "" {
		stop, err := fuiov.StartProfiles(*profile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "fuiov-rsu: profile:", err)
			}
		}()
	}
	defer func() {
		if reg != nil {
			fmt.Fprintln(os.Stderr, "== metrics snapshot ==")
			if *metricsMode == "json" {
				reg.Snapshot().WriteJSON(os.Stderr)
			} else {
				reg.Snapshot().WriteText(os.Stderr)
			}
		}
	}()

	// 1. Scenario: mobility trace and per-vehicle traffic-sign shards.
	// Everything downstream of the seed is deterministic, so external
	// agents rebuild the identical fleet from the same flags.
	trace, err := fuiov.SimulateIoV(fuiov.IoVConfig{
		SegmentLength: 6000,
		RSU:           fuiov.RSU{Pos: 3000, Radius: 2000},
		NumVehicles:   *vehicles,
		MinSpeed:      2,
		MaxSpeed:      8,
		RoundDuration: 15,
		DropoutProb:   0.02,
		OpenRoad:      true,
		Seed:          *seed,
	}, *rounds)
	if err != nil {
		return err
	}
	data := fuiov.SynthTraffic(fuiov.DefaultTraffic(80*(*vehicles), *seed))
	train, test := data.Split(fuiov.NewRNG(*seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(*seed), *vehicles)
	if err != nil {
		return err
	}
	clients := make([]*fuiov.Client, *vehicles)
	for i := range clients {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shards[i]}
	}

	// 2. The engine the coordinator fronts: model, store, fault policy.
	model := fuiov.NewTrafficCNN(data.Dims.H, data.Classes)
	model.Init(fuiov.NewRNG(*seed))
	var storeOpts []fuiov.StoreOption
	if *spillWindow > 0 {
		storeOpts = append(storeOpts, fuiov.WithSpill(*spillDir, *spillWindow))
	}
	store, err := fuiov.NewStore(model.NumParams(), 1e-6, storeOpts...)
	if err != nil {
		return err
	}
	defer store.Close()
	store.SetTelemetry(reg)
	policy := &fuiov.FaultPolicy{
		ClientTimeout: *clientTimeout,
		MaxRetries:    *retries,
		Quorum:        *quorum,
	}
	if *streamShards != 0 && !*streaming {
		return fmt.Errorf("-stream-shards requires -streaming")
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: *lr,
		Seed:         *seed,
		Schedule:     trace,
		Store:        store,
		FaultPolicy:  policy,
		Telemetry:    reg,
		Streaming:    *streaming,
		StreamShards: *streamShards,
	})
	if err != nil {
		return err
	}

	// 3. The coordinator, mounted on a plain http.Server.
	coord, err := fuiov.NewRSUCoordinator(fuiov.RSUConfig{
		Engine:              sim,
		RoundWindow:         *window,
		MaxRounds:           *rounds,
		SkipOnQuorumFailure: true,
		Unlearn:             fuiov.UnlearnConfig{LearningRate: *lr, ClipThreshold: 0.05},
		Telemetry:           reg,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	mode := "buffered"
	if *streaming {
		mode = fmt.Sprintf("streamed over %d shards", sim.Config().StreamShards)
	}
	fmt.Printf("RSU coordinator serving on %s (%d vehicles, %d rounds, window %v, quorum %.0f%%, %s uploads, %s)\n",
		base, *vehicles, *rounds, *window, 100**quorum, encoding, mode)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !*agents {
		// Serve-only: run until the horizon is reached by external
		// agents or the process is interrupted.
		fmt.Println("serve-only mode: waiting for external agents (Ctrl-C to stop)")
		if err := coord.WaitDone(ctx); err != nil {
			return err
		}
		fmt.Printf("training horizon reached at round %d\n", sim.Round())
		return nil
	}

	// 4. Loopback demo: one agent per vehicle follows the coordinator
	// over real HTTP, participating only while in coverage.
	fmt.Printf("launching %d loopback agents (participation rate %.1f%%)\n",
		*vehicles, 100*trace.ParticipationRate())
	var wg sync.WaitGroup
	agentErrs := make([]error, *vehicles)
	for i := range clients {
		a, err := fuiov.NewVehicleAgent(fuiov.VehicleAgentConfig{
			BaseURL:     base,
			Client:      clients[i],
			Template:    model.Clone(),
			Seed:        *seed,
			Schedule:    trace,
			Encoding:    encoding,
			Delta:       *delta,
			Policy:      policy,
			UploadDelay: *uploadDelay,
			Telemetry:   reg,
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			agentErrs[i] = a.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range agentErrs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return fmt.Errorf("agent %d: %w", i, err)
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	accTrained := fuiov.AccuracyAt(model.Clone(), sim.Params(), test)
	fmt.Printf("trained over HTTP to round %d: accuracy %.3f\n", sim.Round(), accTrained)

	// 5. Erase a dropout vehicle through the protocol itself.
	victim := pickVictim(trace, store, 2**rounds/3)
	if victim < 0 {
		fmt.Println("no dropout vehicle ever reached the server; nothing to unlearn")
		return nil
	}
	fmt.Printf("unlearning dropout vehicle %d via POST /v1/unlearn (strategy %q)\n", victim, *strategyName)
	reply, err := postUnlearn(ctx, base, victim, *strategyName)
	if err != nil {
		return err
	}
	accRecovered := fuiov.AccuracyAt(model.Clone(), sim.Params(), test)
	if reply.BacktrackRound >= 0 {
		fmt.Printf("backtracked to round %d, recovered %d rounds: accuracy %.3f (trained was %.3f)\n",
			reply.BacktrackRound, reply.RecoveredRounds, accRecovered, accTrained)
	} else {
		fmt.Printf("erased without backtracking, %d recovery rounds: accuracy %.3f (trained was %.3f)\n",
			reply.RecoveredRounds, accRecovered, accTrained)
	}
	rep := store.Storage()
	fmt.Printf("server storage: %d B directions vs %d B full gradients (%.1f%% saved)\n",
		rep.DirectionBytes, rep.FullGradientBytes, 100*rep.GradientSavings)
	return nil
}

// pickVictim returns the first dropout vehicle (gone after cutoff)
// that the server actually heard from, or -1.
func pickVictim(trace *fuiov.Trace, store *fuiov.Store, cutoff int) fuiov.ClientID {
	for _, id := range trace.Dropouts(cutoff) {
		if _, err := store.JoinRound(id); err == nil {
			return id
		}
	}
	return -1
}

// unlearnReply mirrors POST /v1/unlearn's response body.
type unlearnReply struct {
	Strategy        string `json:"strategy"`
	BacktrackRound  int    `json:"backtrack_round"`
	RecoveredRounds int    `json:"recovered_rounds"`
	Applied         bool   `json:"applied"`
}

// postUnlearn erases one client over the wire with the named strategy.
func postUnlearn(ctx context.Context, base string, id fuiov.ClientID, strategy string) (*unlearnReply, error) {
	body, err := json.Marshal(map[string]any{"clients": []fuiov.ClientID{id}, "strategy": strategy})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/unlearn", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("unlearn: %s (%s): %s", resp.Status, e.Code, e.Error)
	}
	var reply unlearnReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	return &reply, nil
}
