// Command fuiov regenerates the paper's tables and figures.
//
// Usage:
//
//	fuiov [flags] <experiment>
//
// Experiments:
//
//	table1    Table I  — accuracy of the four unlearning methods
//	fig1      Fig. 1   — attack success rate across unlearning stages
//	fig2      Fig. 2   — accuracy vs clip threshold L
//	fig3      Fig. 3   — accuracy vs direction threshold δ
//	storage   §I claim — direction vs full-gradient storage footprint
//	cost      recovery cost per method (client compute/comm + storage)
//	ablate    DESIGN.md A1–A4 ablations
//	strategies  comparative harness — every registered unlearn.Strategy
//	          on one seeded scenario (also writes BENCH_strategies.json)
//	scale     streamed sharded aggregation at fleet scale — folds up to
//	          a million synthetic uploads per round with flat memory
//	          (also writes BENCH_scale.json); not part of "all"
//	unlearnq  concurrent unlearning service — training-round throughput
//	          while a recovery pass chases the live tip, and K-request
//	          latency coalesced vs sequential (also writes
//	          BENCH_unlearn.json); not part of "all"
//	verify    forgetting verification — every registered strategy erases
//	          the malicious clients of a backdoored deployment and is
//	          scored by shadow-model membership inference, backdoor
//	          retention and relearn time (also writes BENCH_verify.json);
//	          not part of "all"
//	all       everything above except scale, unlearnq and verify
//
// Flags:
//
//	-scale    "paper" (100 clients, 100 rounds, CNN) or "ci" (miniature)
//	-seed     root random seed (default 42)
//	-faultrate  per-attempt client crash probability during training
//	          (0 = fault-free); arms bounded retries + quorum handling
//	-quorum   minimum responding fraction per round when -faultrate is
//	          active (0 = commit regardless)
//	-metrics  "json" or "text": stream per-round telemetry events to
//	          stderr and print a final metrics snapshot after the run
//	-profile  path prefix: write <prefix>.cpu.pb.gz and
//	          <prefix>.heap.pb.gz pprof profiles
//	-spill-window  keep only this many model snapshots in RAM per
//	          experiment store, spilling older rounds to disk
//	-spill-dir     directory for the spill scratch file (needs
//	          -spill-window)
//	-strategies    comma-separated strategy names for the strategies
//	          experiment (default: every registered strategy)
//	-strategies-out  path for the strategies experiment's JSON output
//	          (default BENCH_strategies.json; "-" disables the file)
//	-scale-clients  comma-separated fleet sizes for the scale
//	          experiment (default 10000,100000,1000000)
//	-scale-rounds   rounds per fleet size (default 3)
//	-scale-dim      model dimension for the scale experiment (default 64)
//	-scale-shards   shard accumulator count (default 8, pinned so the
//	          result checksum is machine-independent)
//	-scale-out      path for the scale experiment's JSON output
//	          (default BENCH_scale.json; "-" disables the file)
//	-unlearnq-smoke run the unlearnq experiment at its CI smoke size
//	-unlearnq-out   path for the unlearnq experiment's JSON output
//	          (default BENCH_unlearn.json; "-" disables the file)
//	-verify   also score each strategies-experiment row with the
//	          forgetting-verification suite (fills the "forgetting"
//	          block in BENCH_strategies.json; omitted without the flag)
//	-verify-out     path for the verify experiment's JSON output
//	          (default BENCH_verify.json; "-" disables the file)
//	-verify-shadows shadow-model count for the membership attack
//	          (0 = suite default)
//	-verify-relearn-cap  round cap for the relearn-time probe
//	          (0 = suite default)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fuiov/internal/experiments"
	"fuiov/internal/telemetry"
	"fuiov/internal/verify"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fuiov:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fuiov", flag.ContinueOnError)
	scaleName := fs.String("scale", "ci", `experiment scale: "paper" or "ci"`)
	seed := fs.Uint64("seed", 42, "root random seed")
	faultRate := fs.Float64("faultrate", 0, "per-attempt client crash probability during training (0 = fault-free)")
	quorum := fs.Float64("quorum", 0, "minimum responding fraction per round under -faultrate (0 = commit regardless)")
	metricsMode := fs.String("metrics", "", `stream per-round metrics to stderr: "json" or "text"`)
	profile := fs.String("profile", "", "write CPU/heap pprof profiles with this path prefix")
	spillWindow := fs.Int("spill-window", 0, "keep only this many model snapshots in RAM, spilling older rounds to disk (0 = all in RAM)")
	spillDir := fs.String("spill-dir", "", "directory for the snapshot spill file (default: OS temp dir; needs -spill-window)")
	strategyNames := fs.String("strategies", "", "comma-separated strategy names for the strategies experiment (default: every registered strategy)")
	strategiesOut := fs.String("strategies-out", "BENCH_strategies.json", `path for the strategies experiment's JSON output ("-" disables the file)`)
	scaleClients := fs.String("scale-clients", "", "comma-separated fleet sizes for the scale experiment (default 10000,100000,1000000)")
	scaleRounds := fs.Int("scale-rounds", 0, "rounds per fleet size for the scale experiment (default 3)")
	scaleDim := fs.Int("scale-dim", 0, "model dimension for the scale experiment (default 64)")
	scaleShards := fs.Int("scale-shards", 0, "shard accumulator count for the scale experiment (default 8, machine-independent)")
	scaleOut := fs.String("scale-out", "BENCH_scale.json", `path for the scale experiment's JSON output ("-" disables the file)`)
	unlearnqSmoke := fs.Bool("unlearnq-smoke", false, "run the unlearnq experiment at its CI smoke size")
	unlearnqOut := fs.String("unlearnq-out", "BENCH_unlearn.json", `path for the unlearnq experiment's JSON output ("-" disables the file)`)
	verifyRows := fs.Bool("verify", false, "score each strategies-experiment row with the forgetting-verification suite")
	verifyOut := fs.String("verify-out", "BENCH_verify.json", `path for the verify experiment's JSON output ("-" disables the file)`)
	verifyShadows := fs.Int("verify-shadows", 0, "shadow-model count for the membership attack (0 = suite default)")
	verifyRelearnCap := fs.Int("verify-relearn-cap", 0, "round cap for the relearn-time probe (0 = suite default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment, got %d args", fs.NArg())
	}
	var scale experiments.Scale
	switch *scaleName {
	case "paper":
		scale = experiments.PaperScale()
	case "ci":
		scale = experiments.CIScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	reg, err := newRegistry(*metricsMode)
	if err != nil {
		return err
	}
	scale.Telemetry = reg
	scale.FaultRate = *faultRate
	scale.Quorum = *quorum
	scale.SpillWindow = *spillWindow
	scale.SpillDir = *spillDir
	if *spillDir != "" && *spillWindow <= 0 {
		return fmt.Errorf("-spill-dir requires -spill-window > 0")
	}
	if *profile != "" {
		stop, err := telemetry.StartProfiles(*profile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "fuiov: profile:", err)
			} else {
				fmt.Fprintf(os.Stderr, "profiles written to %s.cpu.pb.gz and %s.heap.pb.gz\n", *profile, *profile)
			}
		}()
	}

	experimentsToRun := []string{fs.Arg(0)}
	if fs.Arg(0) == "all" {
		experimentsToRun = []string{"table1", "fig1", "fig2", "fig3", "storage", "cost", "ablate", "strategies"}
	}
	opts := strategyOpts{names: splitNames(*strategyNames), out: *strategiesOut}
	sopts, err := parseScaleOpts(*scaleClients, *scaleRounds, *scaleDim, *scaleShards, *seed, *scaleOut)
	if err != nil {
		return err
	}
	opts.scale = sopts
	opts.unlearnq = unlearnqOpts{smoke: *unlearnqSmoke, out: *unlearnqOut}
	opts.verify = *verifyRows
	opts.vopts = verifyOpts{out: *verifyOut, shadows: *verifyShadows, relearnCap: *verifyRelearnCap}
	for _, name := range experimentsToRun {
		start := time.Now()
		out, err := runOne(name, scale, *seed, opts)
		if err != nil {
			return err
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return dumpMetrics(reg, *metricsMode)
}

// newRegistry builds the telemetry registry for -metrics, streaming
// per-round events to stderr so tables on stdout stay clean.
func newRegistry(mode string) (*telemetry.Registry, error) {
	switch mode {
	case "":
		return nil, nil
	case "json":
		r := telemetry.New()
		r.SetObserver(telemetry.NewJSONObserver(os.Stderr))
		return r, nil
	case "text":
		r := telemetry.New()
		r.SetObserver(telemetry.NewTextObserver(os.Stderr))
		return r, nil
	default:
		return nil, fmt.Errorf("unknown -metrics mode %q (want json or text)", mode)
	}
}

// dumpMetrics prints the final snapshot of every counter, gauge and
// timer in the -metrics format.
func dumpMetrics(reg *telemetry.Registry, mode string) error {
	if reg == nil {
		return nil
	}
	fmt.Fprintln(os.Stderr, "== metrics snapshot ==")
	if mode == "json" {
		return reg.Snapshot().WriteJSON(os.Stderr)
	}
	return reg.Snapshot().WriteText(os.Stderr)
}

// strategyOpts carries the strategies experiment's flags.
type strategyOpts struct {
	names    []string // nil = every registered strategy
	out      string   // JSON path; "-" disables the file
	verify   bool     // score rows with the forgetting suite
	scale    scaleOpts
	unlearnq unlearnqOpts
	vopts    verifyOpts
}

// verifyOpts carries the verify experiment's flags.
type verifyOpts struct {
	out        string // JSON path; "-" disables the file
	shadows    int    // 0 = suite default
	relearnCap int    // 0 = suite default
}

// config assembles the suite configuration from the flags.
func (o verifyOpts) config() verify.Config {
	return verify.Config{Shadows: o.shadows, RelearnCap: o.relearnCap}
}

// runVerify runs the forgetting-verification harness and writes the
// JSON artefact alongside the stdout table.
func runVerify(scale experiments.Scale, seed uint64, names []string, opts verifyOpts) (string, error) {
	rows, err := experiments.VerifyStrategies(context.Background(), scale, seed, names, opts.config())
	if err != nil {
		return "", err
	}
	if opts.out != "" && opts.out != "-" {
		f, err := os.Create(opts.out)
		if err != nil {
			return "", err
		}
		werr := experiments.WriteVerifyJSON(f, rows)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return "", werr
		}
		fmt.Fprintf(os.Stderr, "verify benchmark written to %s\n", opts.out)
	}
	return experiments.FormatVerify(rows), nil
}

// unlearnqOpts carries the unlearnq experiment's flags.
type unlearnqOpts struct {
	smoke bool
	out   string // JSON path; "-" disables the file
}

// runUnlearnQ runs the concurrent-unlearning benchmark and writes the
// JSON artefact alongside the stdout table.
func runUnlearnQ(opts unlearnqOpts) (string, error) {
	cfg := experiments.DefaultUnlearnQConfig()
	if opts.smoke {
		cfg = experiments.SmokeUnlearnQConfig()
	}
	res, err := experiments.UnlearnQBench(cfg)
	if err != nil {
		return "", err
	}
	if opts.out != "" && opts.out != "-" {
		f, err := os.Create(opts.out)
		if err != nil {
			return "", err
		}
		werr := experiments.WriteUnlearnQJSON(f, res)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return "", werr
		}
		fmt.Fprintf(os.Stderr, "unlearn queue benchmark written to %s\n", opts.out)
	}
	return experiments.FormatUnlearnQ(res), nil
}

// scaleOpts carries the scale experiment's flags.
type scaleOpts struct {
	cfg experiments.ScaleConfig
	out string // JSON path; "-" disables the file
}

// parseScaleOpts assembles the scale experiment's config from flags,
// leaving zero values for ScaleBench's defaults.
func parseScaleOpts(clients string, rounds, dim, shards int, seed uint64, out string) (scaleOpts, error) {
	cfg := experiments.ScaleConfig{Rounds: rounds, Dim: dim, Shards: shards, Seed: seed}
	for _, f := range splitNames(clients) {
		var n int
		if _, err := fmt.Sscanf(f, "%d", &n); err != nil || n <= 0 {
			return scaleOpts{}, fmt.Errorf("bad -scale-clients entry %q", f)
		}
		cfg.Registered = append(cfg.Registered, n)
	}
	return scaleOpts{cfg: cfg, out: out}, nil
}

// runScale runs the scale sweep and writes the JSON benchmark
// artefact alongside the stdout table.
func runScale(opts scaleOpts) (string, error) {
	rows, err := experiments.ScaleBench(opts.cfg)
	if err != nil {
		return "", err
	}
	if opts.out != "" && opts.out != "-" {
		f, err := os.Create(opts.out)
		if err != nil {
			return "", err
		}
		werr := experiments.WriteScaleJSON(f, rows)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return "", werr
		}
		fmt.Fprintf(os.Stderr, "scale benchmark written to %s\n", opts.out)
	}
	return experiments.FormatScale(rows), nil
}

// splitNames parses the -strategies flag into a name list.
func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// runStrategies runs the comparative harness and writes the JSON
// benchmark artefact alongside the stdout table.
func runStrategies(scale experiments.Scale, seed uint64, opts strategyOpts) (string, error) {
	var vcfg *verify.Config
	if opts.verify {
		cfg := opts.vopts.config()
		vcfg = &cfg
	}
	rows, err := experiments.CompareStrategiesVerified(scale, seed, opts.names, vcfg)
	if err != nil {
		return "", err
	}
	if opts.out != "" && opts.out != "-" {
		f, err := os.Create(opts.out)
		if err != nil {
			return "", err
		}
		werr := experiments.WriteStrategiesJSON(f, rows)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return "", werr
		}
		fmt.Fprintf(os.Stderr, "strategies benchmark written to %s\n", opts.out)
	}
	return experiments.FormatStrategies(rows), nil
}

func runOne(name string, scale experiments.Scale, seed uint64, opts strategyOpts) (string, error) {
	switch name {
	case "table1":
		rows, err := experiments.Table1(scale, seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatTable1(rows), nil
	case "fig1":
		rows, err := experiments.Figure1(scale, seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure1(rows), nil
	case "fig2":
		points, err := experiments.Figure2(scale, seed, nil)
		if err != nil {
			return "", err
		}
		return experiments.FormatSweep(
			fmt.Sprintf("Fig. 2 — accuracy vs clip threshold L (δ=%.0e)", scale.Delta),
			"L", points), nil
	case "fig3":
		points, err := experiments.Figure3(scale, seed, nil)
		if err != nil {
			return "", err
		}
		return experiments.FormatSweep(
			"Fig. 3 — accuracy vs direction threshold δ (L at Table-I setting)", "delta", points), nil
	case "storage":
		rows, err := experiments.Storage(scale, seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatStorage(rows), nil
	case "cost":
		rows, err := experiments.CostTable(scale, seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatCost(rows), nil
	case "ablate":
		clip, err := experiments.AblationClipping(scale, seed)
		if err != nil {
			return "", err
		}
		refresh, err := experiments.AblationRefresh(scale, seed, nil)
		if err != nil {
			return "", err
		}
		boot, err := experiments.AblationBootstrap(scale, seed)
		if err != nil {
			return "", err
		}
		hetero, err := experiments.AblationHeterogeneity(scale, seed, nil)
		if err != nil {
			return "", err
		}
		return experiments.FormatAblation("A1 — clipping mode", clip) + "\n" +
			experiments.FormatAblation("A2 — pair refresh period", refresh) + "\n" +
			experiments.FormatAblation("A3 — L-BFGS bootstrap", boot) + "\n" +
			experiments.FormatAblation("A4 — client heterogeneity", hetero), nil
	case "strategies":
		return runStrategies(scale, seed, opts)
	case "scale":
		return runScale(opts.scale)
	case "unlearnq":
		return runUnlearnQ(opts.unlearnq)
	case "verify":
		return runVerify(scale, seed, opts.names, opts.vopts)
	default:
		return "", fmt.Errorf("unknown experiment %q (want table1|fig1|fig2|fig3|storage|cost|ablate|strategies|scale|unlearnq|verify|all)", name)
	}
}
