// Command fuiov-iov demonstrates the full Internet-of-Vehicles
// scenario the paper targets: vehicles move along a highway and join
// federated learning only while inside RSU coverage; after training,
// the RSU erases a dropped-out vehicle with backtracking + server-side
// recovery — no client participation needed.
//
// With -faults the radio layer also injects realistic client faults
// derived from the same mobility trace — out-of-coverage vehicles
// crash, in-coverage vehicles answer with distance-dependent latency —
// and the round engine copes via per-client deadlines, bounded retries
// and quorum-based degradation.
//
// Usage:
//
//	fuiov-iov [-vehicles N] [-rounds T] [-seed S] [-metrics json|text] [-profile prefix]
//	          [-faults] [-quorum F] [-client-timeout D] [-retries K]
//	          [-spill-window W [-spill-dir d]] [-strategy name]
//
// -strategy selects the unlearning algorithm by registered name
// (fuiov.StrategyNames lists them; default "paper"). Strategies that
// replay full gradient history are not satisfiable here — the RSU
// stores only 2-bit directions — but client-side strategies (retrain,
// pga, not) are.
//
// -spill-window W bounds the RSU's resident snapshot memory to the
// newest W rounds; older models live in an on-disk scratch file and
// unlearning reads them back transparently (bit-identical results).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"fuiov"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fuiov-iov:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fuiov-iov", flag.ContinueOnError)
	vehicles := fs.Int("vehicles", 20, "fleet size")
	rounds := fs.Int("rounds", 120, "federated rounds")
	seed := fs.Uint64("seed", 7, "root random seed")
	metricsMode := fs.String("metrics", "", `stream per-round metrics to stderr: "json" or "text"`)
	profile := fs.String("profile", "", "write CPU/heap pprof profiles with this path prefix")
	useFaults := fs.Bool("faults", false, "inject trace-derived client faults (coverage crashes, distance latency)")
	quorum := fs.Float64("quorum", 0.5, "minimum responding fraction per round under -faults")
	clientTimeout := fs.Duration("client-timeout", 150*time.Millisecond, "per-attempt upload deadline under -faults")
	retries := fs.Int("retries", 1, "extra attempts per client per round under -faults")
	spillWindow := fs.Int("spill-window", 0, "keep only this many model snapshots in RAM, spilling older rounds to disk (0 = all in RAM)")
	spillDir := fs.String("spill-dir", "", "directory for the snapshot spill file (default: OS temp dir; needs -spill-window)")
	strategyName := fs.String("strategy", "paper", fmt.Sprintf("unlearning strategy (one of %v)", fuiov.StrategyNames()))
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spillDir != "" && *spillWindow <= 0 {
		return fmt.Errorf("-spill-dir requires -spill-window > 0")
	}
	var reg *fuiov.Telemetry
	switch *metricsMode {
	case "":
	case "json":
		reg = fuiov.NewTelemetry()
		reg.SetObserver(fuiov.NewJSONTelemetryObserver(os.Stderr))
	case "text":
		reg = fuiov.NewTelemetry()
		reg.SetObserver(fuiov.NewTextTelemetryObserver(os.Stderr))
	default:
		return fmt.Errorf("unknown -metrics mode %q (want json or text)", *metricsMode)
	}
	if *profile != "" {
		stop, err := fuiov.StartProfiles(*profile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "fuiov-iov: profile:", err)
			}
		}()
	}
	defer func() {
		if reg != nil {
			fmt.Fprintln(os.Stderr, "== metrics snapshot ==")
			if *metricsMode == "json" {
				reg.Snapshot().WriteJSON(os.Stderr)
			} else {
				reg.Snapshot().WriteText(os.Stderr)
			}
		}
	}()

	// 1. Mobility: a 6 km ring road, one RSU with 1.2 km coverage.
	trace, err := fuiov.SimulateIoV(fuiov.IoVConfig{
		SegmentLength: 6000,
		RSU:           fuiov.RSU{Pos: 3000, Radius: 2000},
		NumVehicles:   *vehicles,
		MinSpeed:      2,
		MaxSpeed:      8,
		RoundDuration: 15,
		DropoutProb:   0.02,
		OpenRoad:      true,
		Seed:          *seed,
	}, *rounds)
	if err != nil {
		return err
	}
	fmt.Printf("IoV scenario: %d vehicles, %d rounds, participation rate %.1f%%\n",
		*vehicles, *rounds, 100*trace.ParticipationRate())

	// 2. Data: every vehicle carries a private traffic-sign shard.
	data := fuiov.SynthTraffic(fuiov.DefaultTraffic(80*(*vehicles), *seed))
	train, test := data.Split(fuiov.NewRNG(*seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(*seed), *vehicles)
	if err != nil {
		return err
	}
	clients := make([]*fuiov.Client, *vehicles)
	for i := range clients {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shards[i]}
	}

	// 3. Federated training driven by connectivity.
	const lr = 0.12
	model := fuiov.NewTrafficCNN(data.Dims.H, data.Classes)
	model.Init(fuiov.NewRNG(*seed))
	var storeOpts []fuiov.StoreOption
	if *spillWindow > 0 {
		storeOpts = append(storeOpts, fuiov.WithSpill(*spillDir, *spillWindow))
	}
	store, err := fuiov.NewStore(model.NumParams(), 1e-6, storeOpts...)
	if err != nil {
		return err
	}
	defer store.Close()
	store.SetTelemetry(reg)
	simCfg := fuiov.SimConfig{
		LearningRate: lr,
		Seed:         *seed,
		Schedule:     trace,
		Store:        store,
		Telemetry:    reg,
	}
	if *useFaults {
		// The same mobility trace that drives the schedule also drives
		// the fault model: 20 ms base latency plus 80 ms per km of
		// distance to the RSU, so vehicles near the coverage edge
		// become stragglers the deadline cuts off.
		simCfg.Faults = trace.Faults(20*time.Millisecond, 80*time.Millisecond)
		simCfg.FaultPolicy = &fuiov.FaultPolicy{
			ClientTimeout: *clientTimeout,
			MaxRetries:    *retries,
			Quorum:        *quorum,
		}
		fmt.Printf("fault injection on: deadline %v, %d retries, quorum %.0f%%\n",
			*clientTimeout, *retries, 100**quorum)
	}
	sim, err := fuiov.NewSimulation(model, clients, simCfg)
	if err != nil {
		return err
	}
	// Drive rounds one at a time: trace-derived faults are a pure
	// function of (vehicle, round) — retrying a round that failed
	// quorum replays the identical geometry — so skip doomed rounds
	// and pick the fleet back up at the next sampling instead.
	skipped := 0
	for r := 0; r < *rounds; r++ {
		err := sim.RunRound()
		if err == nil {
			continue
		}
		if !errors.Is(err, fuiov.ErrQuorumNotReached) {
			return err
		}
		if err := sim.SkipRound(); err != nil {
			return err
		}
		skipped++
	}
	if skipped > 0 {
		fmt.Printf("%d rounds skipped: every in-range vehicle was past the deadline\n", skipped)
	}
	accTrained := fuiov.AccuracyAt(model.Clone(), sim.Params(), test)
	fmt.Printf("trained global model accuracy: %.3f\n", accTrained)

	// 4. Pick a dropout vehicle (connected early, gone for the last
	// third of the horizon) and erase it.
	dropouts := trace.Dropouts(2 * *rounds / 3)
	if len(dropouts) == 0 {
		fmt.Println("no dropout vehicles in this scenario; nothing to unlearn")
		return nil
	}
	// Under fault injection a dropout vehicle may never have uploaded
	// successfully — then the store has nothing of it to erase. Pick
	// the first dropout the server actually heard from.
	victim := fuiov.ClientID(-1)
	join := -1
	for _, id := range dropouts {
		j, err := store.JoinRound(id)
		if err == nil {
			victim, join = id, j
			break
		}
		if !errors.Is(err, fuiov.ErrUnknownClient) {
			return err
		}
		fmt.Printf("dropout vehicle %d never uploaded successfully; nothing to unlearn for it\n", id)
	}
	if join < 0 {
		fmt.Println("no dropout vehicle ever reached the server; nothing to unlearn")
		return nil
	}
	fmt.Printf("unlearning dropout vehicle %d with strategy %q (joined round %d, last seen round %d)\n",
		victim, *strategyName, join, trace.LastSeen(victim))

	res, err := fuiov.Unlearn(context.Background(), *strategyName, fuiov.UnlearnRequest{
		Forgotten:    []fuiov.ClientID{victim},
		Store:        store,
		Template:     model,
		Clients:      clients,
		FinalParams:  sim.Params(),
		LearningRate: lr,
		Rounds:       sim.Round(),
		Seed:         *seed,
		Unlearn:      fuiov.UnlearnConfig{ClipThreshold: 0.05},
		Telemetry:    reg,
	})
	if err != nil {
		return err
	}
	accUnlearned := fuiov.AccuracyAt(model.Clone(), res.Unlearned, test)
	accRecovered := fuiov.AccuracyAt(model.Clone(), res.Params, test)
	if res.BacktrackRound >= 0 {
		fmt.Printf("backtracked to round %d: accuracy %.3f\n", res.BacktrackRound, accUnlearned)
	} else {
		fmt.Printf("erased without backtracking: accuracy %.3f\n", accUnlearned)
	}
	fmt.Printf("recovered over %d rounds:  accuracy %.3f (trained was %.3f)\n",
		res.RecoveredRounds, accRecovered, accTrained)
	if res.Paper != nil {
		fmt.Printf("recovery used no client communication; %d client-rounds fell back to raw directions\n",
			res.Paper.DegenerateFallbacks)
	} else {
		fmt.Printf("strategy %q demanded %d client gradient computations during unlearning\n",
			*strategyName, res.ClientWork)
	}
	rep := store.Storage()
	fmt.Printf("server storage: %d B directions vs %d B full gradients (%.1f%% saved)\n",
		rep.DirectionBytes, rep.FullGradientBytes, 100*rep.GradientSavings)
	return nil
}
