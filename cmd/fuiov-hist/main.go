// Command fuiov-hist inspects and operates on persisted history
// snapshots (the binary format written by Store.Save). It demonstrates
// that unlearning needs nothing but the snapshot: an RSU can persist
// its round log, restart, and still erase any vehicle.
//
// Usage:
//
//	fuiov-hist stats   <snapshot> [-spill-window W [-spill-dir d]]
//	    summarise rounds/clients/bytes (and RAM vs spilled residency)
//	fuiov-hist clients <snapshot>           list membership intervals
//	fuiov-hist unlearn <snapshot> -client N -lr η [-L x] [-out file]
//	                   [-strategy name] [-metrics json|text] [-profile prefix]
//	                   [-spill-window W [-spill-dir d]]
//	    run backtracking + recovery from the snapshot alone and
//	    optionally write the recovered parameters as a new model file
//	    (raw little-endian float64s). -metrics streams per-round
//	    recovery telemetry to stderr; -profile writes pprof profiles.
//	    -strategy selects the unlearning algorithm (default "paper");
//	    a snapshot carries only 2-bit directions, so strategies that
//	    need live clients or full gradients report what is missing.
//
// -spill-window W loads the snapshot into a bounded-memory store:
// only the newest W model snapshots stay resident, older rounds are
// served from an on-disk scratch file. Recovery results are
// bit-identical either way.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"fuiov/internal/history"
	"fuiov/internal/telemetry"
	"fuiov/internal/unlearn"
	"fuiov/internal/unlearn/strategy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fuiov-hist:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: fuiov-hist <stats|clients|unlearn> <snapshot> [flags]")
	}
	cmd, path := args[0], args[1]
	switch cmd {
	case "stats":
		return stats(path, args[2:])
	case "clients":
		return clients(path, args[2:])
	case "unlearn":
		return unlearnCmd(path, args[2:])
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// spillFlags registers the snapshot-residency flags on fs and returns
// a resolver mapping them to store options, so every subcommand that
// loads a snapshot accepts the same -spill-window/-spill-dir pair.
func spillFlags(fs *flag.FlagSet) func() ([]history.StoreOption, error) {
	window := fs.Int("spill-window", 0, "keep only this many model snapshots in RAM, spilling older rounds to disk (0 = all in RAM)")
	dir := fs.String("spill-dir", "", "directory for the snapshot spill file (default: OS temp dir; needs -spill-window)")
	return func() ([]history.StoreOption, error) {
		if *dir != "" && *window <= 0 {
			return nil, fmt.Errorf("-spill-dir requires -spill-window > 0")
		}
		if *window > 0 {
			return []history.StoreOption{history.WithSpill(*dir, *window)}, nil
		}
		return nil, nil
	}
}

func loadSnapshot(path string, opts ...history.StoreOption) (*history.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	store, err := history.Load(f, opts...)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return store, nil
}

func stats(path string, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	spill := spillFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := spill()
	if err != nil {
		return err
	}
	store, err := loadSnapshot(path, opts...)
	if err != nil {
		return err
	}
	defer store.Close()
	rep := store.Storage()
	fmt.Printf("rounds:            %d\n", store.Rounds())
	fmt.Printf("model dimension:   %d\n", store.Dim())
	fmt.Printf("direction δ:       %g\n", store.Delta())
	fmt.Printf("clients seen:      %d\n", len(store.Clients()))
	fmt.Printf("direction bytes:   %d\n", rep.DirectionBytes)
	fmt.Printf("model bytes:       %d (%d resident, %d spilled)\n",
		rep.ModelBytes, rep.ModelBytesResident, rep.ModelBytesSpilled)
	fmt.Printf("full-grad bytes:   %d (hypothetical)\n", rep.FullGradientBytes)
	fmt.Printf("gradient savings:  %.1f%%\n", 100*rep.GradientSavings)
	return nil
}

func clients(path string, args []string) error {
	fs := flag.NewFlagSet("clients", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-6s %-6s\n", "client", "join", "leave")
	for _, id := range store.Clients() {
		m, err := store.MembershipOf(id)
		if err != nil {
			return err
		}
		leave := "-"
		if m.LeaveRound >= 0 {
			leave = fmt.Sprint(m.LeaveRound)
		}
		fmt.Printf("%-8d %-6d %-6s\n", id, m.JoinRound, leave)
	}
	return nil
}

func unlearnCmd(path string, args []string) error {
	fs := flag.NewFlagSet("unlearn", flag.ContinueOnError)
	client := fs.Int("client", -1, "client ID to forget (required)")
	lr := fs.Float64("lr", 0, "learning rate η used in training (required)")
	clip := fs.Float64("L", 0.05, "clip threshold")
	out := fs.String("out", "", "write recovered parameters to this file")
	strategyName := fs.String("strategy", "paper", fmt.Sprintf("unlearning strategy (one of %v; snapshot-only inputs)", strategy.Names()))
	metricsMode := fs.String("metrics", "", `stream per-round recovery metrics to stderr: "json" or "text"`)
	profile := fs.String("profile", "", "write CPU/heap pprof profiles with this path prefix")
	spill := spillFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *client < 0 {
		return fmt.Errorf("-client is required")
	}
	if *lr <= 0 {
		return fmt.Errorf("-lr is required and must be positive")
	}
	opts, err := spill()
	if err != nil {
		return err
	}
	store, err := loadSnapshot(path, opts...)
	if err != nil {
		return err
	}
	defer store.Close()
	var reg *telemetry.Registry
	switch *metricsMode {
	case "":
	case "json":
		reg = telemetry.New()
		reg.SetObserver(telemetry.NewJSONObserver(os.Stderr))
	case "text":
		reg = telemetry.New()
		reg.SetObserver(telemetry.NewTextObserver(os.Stderr))
	default:
		return fmt.Errorf("unknown -metrics mode %q (want json or text)", *metricsMode)
	}
	if reg != nil {
		store.SetTelemetry(reg)
	}
	if *profile != "" {
		stop, err := telemetry.StartProfiles(*profile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "fuiov-hist: profile:", err)
			}
		}()
	}
	if reg != nil {
		defer func() {
			fmt.Fprintln(os.Stderr, "== metrics snapshot ==")
			if *metricsMode == "json" {
				reg.Snapshot().WriteJSON(os.Stderr)
			} else {
				reg.Snapshot().WriteText(os.Stderr)
			}
		}()
	}
	res, err := strategy.Unlearn(context.Background(), *strategyName, strategy.Request{
		Forgotten:    []history.ClientID{history.ClientID(*client)},
		Store:        store,
		LearningRate: *lr,
		Unlearn:      unlearn.Config{ClipThreshold: *clip},
		Telemetry:    reg,
	})
	if err != nil {
		switch {
		case errors.Is(err, history.ErrUnknownClient):
			return fmt.Errorf("%w\n  snapshot knows clients %v — run `fuiov-hist clients` to inspect them", err, store.Clients())
		case errors.Is(err, strategy.ErrMissingInput):
			return fmt.Errorf("%w\n  a snapshot holds only 2-bit directions; strategy %q needs inputs a live federation provides", err, *strategyName)
		}
		return err
	}
	fmt.Printf("forgot client %d with strategy %q: backtracked to round %d, recovered %d rounds\n",
		*client, *strategyName, res.BacktrackRound, res.RecoveredRounds)
	if res.Paper != nil {
		fmt.Printf("bootstrapped clients: %d, raw-direction fallbacks: %d, pair refreshes: %d\n",
			res.Paper.BootstrappedClients, res.Paper.DegenerateFallbacks, res.Paper.PairRefreshes)
	}
	if *out != "" {
		if err := writeParams(*out, res.Params); err != nil {
			return err
		}
		fmt.Printf("recovered parameters (%d float64s) written to %s\n", len(res.Params), *out)
	}
	return nil
}

func writeParams(path string, params []float64) error {
	buf := make([]byte, 8*len(params))
	for i, v := range params {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return os.WriteFile(path, buf, 0o644)
}
