// Package fuiov is a Go implementation of "Federated Unlearning in the
// Internet of Vehicles" (Li, Feng, Wang, Wu, Düdder — DSN 2024): a
// federated-unlearning scheme in which the server (an IoV road-side
// unit) erases a vehicle's contributions by backtracking the global
// model to the vehicle's join round and then recovers the model
// server-side — without contacting any client — using only stored
// historical models and 2-bit gradient *directions*.
//
// The package is a facade over the implementation packages:
//
//   - Training: build a federation of Clients over a Dataset, run a
//     Simulation with FedAvg aggregation, and record history in a
//     Store (models + compressed gradient directions + membership).
//   - Unlearning: an Unlearner backtracks to the forgotten vehicle's
//     join round (eq. 5) and recovers the remaining rounds with
//     Cauchy-mean-value-theorem gradient estimation (eq. 6), compact
//     L-BFGS Hessian-vector products (Algorithm 2), and gradient
//     clipping (eq. 7).
//   - Attacks: label-flip and backdoor poisoning plus attack-success
//     -rate measurement, for the poisoning-recovery scenario.
//   - Baselines: Retraining, FedRecover and FedRecovery, the methods
//     the paper compares against.
//   - IoV: a highway mobility model producing connectivity-driven
//     join/leave/dropout schedules.
//   - Serving: an RSUCoordinator exposes the engine over HTTP
//     (PROTOCOL.md) with wall-clock collection windows and quorum
//     enforcement; VehicleAgents follow its round clock, computing
//     gradients locally and uploading them dense (bit-exact) or
//     sign-compressed. Rounds served over the wire commit through the
//     engine's own path, so they are bit-identical to in-process
//     rounds — see cmd/fuiov-rsu and ExampleNewRSUCoordinator.
//
// A minimal end-to-end flow:
//
//	data := fuiov.SynthDigits(fuiov.DefaultDigits(6000, seed))
//	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
//	shards, _ := fuiov.PartitionIID(train, fuiov.NewRNG(seed), 10)
//	clients := make([]*fuiov.Client, len(shards))
//	for i, s := range shards {
//		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: s}
//	}
//	model := fuiov.NewDigitsCNN(12, 10)
//	model.Init(fuiov.NewRNG(seed))
//	store, _ := fuiov.NewStore(model.NumParams(), 1e-6)
//	sim, _ := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
//		LearningRate: 0.03, Seed: seed, Store: store,
//	})
//	_ = sim.Run(100)
//
//	u, _ := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{LearningRate: 0.03})
//	res, _ := u.Unlearn(3) // erase vehicle 3
//	// res.Params is the recovered global model.
//
// # Observability
//
// Every subsystem reports into an optional Telemetry registry
// (internal/telemetry): the simulation's per-phase round timings
// (compute/record/aggregate), the history store's byte counters and
// live compression-saving gauge, the unlearner's backtrack depth,
// recovery timings and clip activations, and the baselines' cost
// counters. Attach one registry to everything:
//
//	reg := fuiov.NewTelemetry()
//	store.SetTelemetry(reg)
//	sim, _ := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
//		LearningRate: 0.03, Seed: seed, Store: store, Telemetry: reg,
//	})
//	reg.SetObserver(fuiov.NewTextTelemetryObserver(os.Stderr)) // per-round stream
//	...
//	u, _ := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
//		LearningRate: 0.03, Telemetry: reg, // recovery reports too
//	})
//	...
//	reg.Snapshot().WriteText(os.Stdout) // final counters/gauges/timers
//
// A nil registry is the default and disables all instrumentation at
// negligible cost (<5% of a training round, verified by benchmark);
// enabling it never changes numerical results. The cmd/ binaries
// expose it via -metrics (json|text) and -profile (pprof CPU+heap);
// examples/telemetry reads the paper's ~97% storage-saving claim
// straight off the live gauges.
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper.
package fuiov
