package fuiov_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"

	"fuiov"
)

// Example demonstrates the core workflow: train a small federation
// while recording 2-bit direction history, then erase a vehicle by
// backtracking and recover the model entirely server-side.
func Example() {
	const seed = 7
	data := fuiov.SynthDigits(fuiov.DefaultDigits(500, seed))
	train, _ := data.Split(fuiov.NewRNG(seed), 0.9)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), 5)
	if err != nil {
		fmt.Println("partition:", err)
		return
	}
	clients := make([]*fuiov.Client, len(shards))
	for i, s := range shards {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: s}
	}
	model := fuiov.NewMLP(data.Dims.Size(), 16, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-2)
	if err != nil {
		fmt.Println("store:", err)
		return
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: 0.05, Seed: seed, Store: store,
	})
	if err != nil {
		fmt.Println("simulation:", err)
		return
	}
	if err := sim.Run(20); err != nil {
		fmt.Println("train:", err)
		return
	}

	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate: 0.05, ClipThreshold: 0.05,
	})
	if err != nil {
		fmt.Println("unlearner:", err)
		return
	}
	res, err := u.Unlearn(3)
	if err != nil {
		fmt.Println("unlearn:", err)
		return
	}
	fmt.Printf("backtracked to round %d, recovered %d rounds, forgot %v\n",
		res.BacktrackRound, res.RecoveredRounds, res.Forgotten)
	// Output: backtracked to round 0, recovered 20 rounds, forgot [3]
}

// ExampleStore_Storage shows the storage accounting behind the paper's
// "~95% saved" headline.
func ExampleStore_Storage() {
	store, err := fuiov.NewStore(1000, 1e-2)
	if err != nil {
		fmt.Println(err)
		return
	}
	grads := map[fuiov.ClientID][]float64{}
	for c := fuiov.ClientID(0); c < 4; c++ {
		g := make([]float64, 1000)
		for i := range g {
			g[i] = 0.05
		}
		grads[c] = g
	}
	if err := store.RecordRound(0, make([]float64, 1000), grads, nil); err != nil {
		fmt.Println(err)
		return
	}
	rep := store.Storage()
	fmt.Printf("directions: %d B, full gradients would be: %d B, saved: %.1f%%\n",
		rep.DirectionBytes, rep.FullGradientBytes, 100*rep.GradientSavings)
	// Output: directions: 1000 B, full gradients would be: 32000 B, saved: 96.9%
}

// ExampleNewRSUCoordinator serves the federation over HTTP: vehicle
// agents train against a networked coordinator, then a client erases a
// vehicle through POST /v1/unlearn — the protocol documented in
// PROTOCOL.md. Rounds served this way are bit-identical to in-process
// ones.
func ExampleNewRSUCoordinator() {
	const seed, rounds = 7, 3
	data := fuiov.SynthDigits(fuiov.DefaultDigits(200, seed))
	shards, err := fuiov.PartitionIID(data, fuiov.NewRNG(seed), 4)
	if err != nil {
		fmt.Println("partition:", err)
		return
	}
	clients := make([]*fuiov.Client, len(shards))
	for i, s := range shards {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: s}
	}
	model := fuiov.NewMLP(data.Dims.Size(), 8, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-2)
	if err != nil {
		fmt.Println("store:", err)
		return
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: 0.05, Seed: seed, Store: store,
	})
	if err != nil {
		fmt.Println("simulation:", err)
		return
	}
	coord, err := fuiov.NewRSUCoordinator(fuiov.RSUConfig{
		Engine: sim, MaxRounds: rounds,
	})
	if err != nil {
		fmt.Println("coordinator:", err)
		return
	}
	defer coord.Close()
	ts := httptest.NewServer(coord)
	defer ts.Close()

	// Each vehicle is an agent following the coordinator over HTTP:
	// fetch the round's model, compute locally, upload, repeat.
	var wg sync.WaitGroup
	for _, cl := range clients {
		a, err := fuiov.NewVehicleAgent(fuiov.VehicleAgentConfig{
			BaseURL: ts.URL, Client: cl, Template: model.Clone(), Seed: seed,
		})
		if err != nil {
			fmt.Println("agent:", err)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Run(context.Background())
		}()
	}
	wg.Wait()
	fmt.Printf("trained to round %d over HTTP\n", sim.Round())

	// Erase vehicle 2 through the wire protocol.
	resp, err := http.Post(ts.URL+"/v1/unlearn", "application/json",
		strings.NewReader(`{"clients":[2]}`))
	if err != nil {
		fmt.Println("unlearn:", err)
		return
	}
	defer resp.Body.Close()
	var reply struct {
		BacktrackRound  int  `json:"backtrack_round"`
		RecoveredRounds int  `json:"recovered_rounds"`
		Applied         bool `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		fmt.Println("decode:", err)
		return
	}
	fmt.Printf("unlearned: backtracked to round %d, recovered %d rounds, applied %v\n",
		reply.BacktrackRound, reply.RecoveredRounds, reply.Applied)
	// Output:
	// trained to round 3 over HTTP
	// unlearned: backtracked to round 0, recovered 3 rounds, applied true
}

// ExampleInterval shows membership windows for dynamic vehicles.
func ExampleInterval() {
	schedule := fuiov.IntervalSchedule{
		0: {Join: 0, Leave: -1}, // stays forever
		1: {Join: 5, Leave: 20}, // joins late, drives away
	}
	fmt.Println(schedule.Participates(0, 100))
	fmt.Println(schedule.Participates(1, 4))
	fmt.Println(schedule.Participates(1, 10))
	fmt.Println(schedule.Participates(1, 20))
	// Output:
	// true
	// false
	// true
	// false
}
