#!/bin/sh
# Kernel micro-benchmark harness: runs the compute-kernel benchmarks
# (GEMM, conv, dense, HVP, recovery round) with -benchmem and writes
# the results to BENCH_kernels.json as
#   {"cpu": ..., "benchmarks": [{"op", "ns_op", "b_op", "allocs_op"}]}.
# Usage: scripts/bench.sh [-smoke] [-sign] [-strategies] [-scale] [-unlearn] [-verify]
#   -smoke  run every benchmark for a single iteration and write the
#           JSON to a temp file — a fast harness check for check.sh.
#   -sign   run the sign-kernel + history-tier benchmarks instead and
#           write BENCH_sign.json (same schema).
#   -strategies  run the unlearning-strategy comparison harness (every
#           registered unlearn.Strategy on one seeded CI-scale
#           scenario) and write BENCH_strategies.json
#           ({"experiment": "strategies", "strategies": [...]}).
#   -scale  run the streamed sharded-aggregation scale sweep (folds up
#           to a million synthetic uploads per round through
#           fl.ShardedFedAvg) and write BENCH_scale.json
#           ({"experiment": "scale", "rows": [...]}). With -smoke the
#           sweep shrinks to one 10k-client fleet.
#   -unlearn  run the concurrent-unlearning service benchmark (training
#           throughput while a recovery pass chases the live tip, and
#           coalesced-vs-sequential latency for K queued requests) and
#           write BENCH_unlearn.json ({"experiment": "unlearnq", ...}).
#           With -smoke the fleet and history shrink to CI scale.
#   -verify run the forgetting-verification harness (every registered
#           strategy erases the malicious clients of a backdoored
#           CI-scale deployment, scored by shadow-model MIA, backdoor
#           retention and relearn time) and write BENCH_verify.json
#           ({"experiment": "verify", "rows": [...]}). Seed 47 matches
#           TestVerifyForgettingProperty, so the checked-in artefact
#           satisfies the asserted bounds. With -smoke the suite
#           shrinks to two strategies and three shadow models.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_kernels.json
benchtime=1s
suite=kernels
for arg in "$@"; do
	case "$arg" in
	-smoke)
		benchtime=1x
		out=$(mktemp)
		trap 'rm -f "$out"' EXIT
		;;
	-sign)
		suite=sign
		;;
	-strategies)
		suite=strategies
		;;
	-scale)
		suite=scale
		;;
	-unlearn)
		suite=unlearn
		;;
	-verify)
		suite=verify
		;;
	*)
		echo "bench.sh: unknown flag $arg" >&2
		exit 2
		;;
	esac
done

# The strategies suite is not a go-bench run: it drives the comparative
# harness in internal/experiments through cmd/fuiov, which emits the
# JSON artefact itself.
# The scale suite drives the streaming-aggregation sweep in
# internal/experiments through cmd/fuiov; -smoke trims it to a single
# 10k-client fleet with one round so check.sh can afford it.
# The unlearn suite drives the concurrent-unlearning benchmark in
# internal/experiments through cmd/fuiov; -smoke swaps in the CI-scale
# configuration so check.sh can afford it.
if [ "$suite" = unlearn ]; then
	case "$out" in
	BENCH_kernels.json) out=BENCH_unlearn.json ;;
	esac
	if [ "$benchtime" = 1x ]; then
		go run ./cmd/fuiov -unlearnq-smoke -unlearnq-out "$out" unlearnq
	else
		go run ./cmd/fuiov -unlearnq-out "$out" unlearnq
	fi
	count=$(grep -c '"coalesced_sec"' "$out" || true)
	if [ "$count" -eq 0 ]; then
		echo "bench.sh: no unlearn results parsed" >&2
		exit 1
	fi
	echo "bench.sh: wrote $count unlearn rows to $out"
	exit 0
fi

# The verify suite drives the forgetting-verification harness in
# internal/experiments through cmd/fuiov; -smoke trims it to the two
# reference strategies with a small shadow population so check.sh can
# afford it.
if [ "$suite" = verify ]; then
	case "$out" in
	BENCH_kernels.json) out=BENCH_verify.json ;;
	esac
	if [ "$benchtime" = 1x ]; then
		go run ./cmd/fuiov -seed 47 -strategies retrain,paper \
			-verify-shadows 3 -verify-relearn-cap 8 -verify-out "$out" verify
	else
		go run ./cmd/fuiov -seed 47 -verify-out "$out" verify
	fi
	count=$(grep -c '"mia_advantage_after"' "$out" || true)
	if [ "$count" -eq 0 ]; then
		echo "bench.sh: no verify results parsed" >&2
		exit 1
	fi
	echo "bench.sh: wrote $count verify rows to $out"
	exit 0
fi

if [ "$suite" = scale ]; then
	case "$out" in
	BENCH_kernels.json) out=BENCH_scale.json ;;
	esac
	if [ "$benchtime" = 1x ]; then
		go run ./cmd/fuiov -scale-clients 10000 -scale-rounds 1 -scale-out "$out" scale
	else
		go run ./cmd/fuiov -scale-out "$out" scale
	fi
	count=$(grep -c '"registered"' "$out" || true)
	if [ "$count" -eq 0 ]; then
		echo "bench.sh: no scale results parsed" >&2
		exit 1
	fi
	echo "bench.sh: wrote $count scale rows to $out"
	exit 0
fi

if [ "$suite" = strategies ]; then
	case "$out" in
	BENCH_kernels.json) out=BENCH_strategies.json ;;
	esac
	go run ./cmd/fuiov -strategies-out "$out" strategies
	count=$(grep -c '"strategy"' "$out" || true)
	if [ "$count" -eq 0 ]; then
		echo "bench.sh: no strategy results parsed" >&2
		exit 1
	fi
	echo "bench.sh: wrote $count strategy results to $out"
	exit 0
fi

case "$suite" in
sign)
	case "$out" in
	BENCH_kernels.json) out=BENCH_sign.json ;;
	esac
	pattern='^(BenchmarkSignCompress|BenchmarkSignCompressInto|BenchmarkSignDenseLUT|BenchmarkSignAccumulate|BenchmarkSignDecode|BenchmarkHistoryRecordRound|BenchmarkModelIntoSpilled)$'
	pkgs="./internal/sign/ ./internal/history/"
	;;
*)
	pattern='^(BenchmarkMatMul|BenchmarkMatMulNaive|BenchmarkMatMulInto|BenchmarkMulVec|BenchmarkConvForward|BenchmarkConvForwardNaive|BenchmarkConvBackward|BenchmarkConvBackwardNaive|BenchmarkDenseForward|BenchmarkDenseForwardNaive|BenchmarkDenseBackward|BenchmarkHVP|BenchmarkHVPInto|BenchmarkRecoveryRound)$'
	pkgs="./internal/tensor/ ./internal/nn/ ./internal/lbfgs/ ."
	;;
esac

raw=$(mktemp)
go test -bench "$pattern" -benchmem -benchtime "$benchtime" -run '^$' $pkgs | tee "$raw"

awk '
/^cpu:/ && cpu == "" { cpu = substr($0, index($0, ":") + 2) }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bo = "null"; al = "null"
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		else if ($(i + 1) == "B/op") bo = $i
		else if ($(i + 1) == "allocs/op") al = $i
	}
	if (ns == "") next
	row = sprintf("    {\"op\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", name, ns, bo, al)
	rows = rows (rows == "" ? "" : ",\n") row
}
END {
	printf("{\n  \"cpu\": \"%s\",\n  \"benchmarks\": [\n%s\n  ]\n}\n", cpu, rows)
}
' "$raw" >"$out"
rm -f "$raw"

count=$(grep -c '"op"' "$out" || true)
if [ "$count" -eq 0 ]; then
	echo "bench.sh: no benchmark results parsed" >&2
	exit 1
fi
echo "bench.sh: wrote $count results to $out"
