#!/bin/sh
# Tier-1 verification: formatting, static analysis, build, tests.
# Usage: scripts/check.sh [-race]
#   -race  additionally run the test suite under the race detector
#          (covers the parallel round loop and concurrent store reads).
set -eu

cd "$(dirname "$0")/.."

fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt_out" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...

if [ "${1:-}" = "-race" ]; then
	go test -race ./...
fi

echo "check: OK"
