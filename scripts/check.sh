#!/bin/sh
# Tier-1 verification: formatting, static analysis, build, tests.
# Usage: scripts/check.sh [-race] [-faults] [-sim]
#   -race    additionally run the test suite under the race detector
#            (covers the parallel round loop and concurrent store reads).
#   -faults  additionally run the fault-tolerance suite under the race
#            detector (injected faults, retry/deadline/quorum handling,
#            context cancellation).
#   -sim     additionally run the scenario-simulation smoke batch under
#            the race detector plus a coverage report, enforcing floors
#            on internal/{sign,history,unlearn,verify}.
set -eu

cd "$(dirname "$0")/.."

fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt_out" >&2
	exit 1
fi

# API lint: every exported Run*/Unlearn* entry point in the public
# surface (facade, round engine, unlearner, strategies, baselines)
# must either take a leading ctx parameter itself or have a
# context-aware *Context variant, so callers can always cancel.
api_files=$(ls fuiov.go internal/fl/*.go internal/unlearn/*.go internal/unlearn/strategy/*.go internal/baselines/*.go | grep -v _test)
names=$(grep -hE 'func (\([^)]*\) )?(Run|Unlearn)[A-Za-z]*\(' $api_files |
	grep -v '(ctx context\.Context' |
	grep -oE 'func (\([^)]*\) )?(Run|Unlearn)[A-Za-z]*\(' |
	sed -E 's/func (\([^)]*\) )?//; s/\($//' | sort -u)
missing=""
for n in $names; do
	case "$n" in
	*Context) continue ;;
	esac
	if ! grep -qE "func (\([^)]*\) )?${n}Context\(" $api_files; then
		missing="$missing $n"
	fi
done
if [ -n "$missing" ]; then
	echo "ctx lint: exported API missing Context variants:$missing" >&2
	exit 1
fi

# Doc lint: every exported top-level identifier in the facade, the
# networked serving layer and the strategy registry must carry a doc
# comment — these are the surfaces external operators read via go doc,
# and PROTOCOL.md leans on their accuracy.
doc_files=$(ls fuiov.go internal/server/*.go internal/agent/*.go internal/unlearn/strategy/*.go | grep -v _test)
doc_missing=$(awk '
	/^\/\// { prev_comment = 1; next }
	/^(func|type|var|const) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
		if (!prev_comment) print FILENAME ":" FNR ": " $0
	}
	{ prev_comment = 0 }
' $doc_files)
if [ -n "$doc_missing" ]; then
	echo "doc lint: exported identifiers missing doc comments:" >&2
	echo "$doc_missing" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...

# Bench harness smoke: one iteration per kernel benchmark, JSON parsed
# to a temp file — catches bench.sh or benchmark rot without the cost
# of a real measurement run. Both suites (compute kernels, sign+history).
scripts/bench.sh -smoke >/dev/null
scripts/bench.sh -smoke -sign >/dev/null

# Strategy-harness smoke: the comparative unlearning harness must run
# every registered strategy at CI scale and emit a parseable
# BENCH_strategies.json (written to a temp file here).
scripts/bench.sh -smoke -strategies >/dev/null

# Scale-harness smoke: one 10k-client streamed round through the
# sharded aggregation path — proves the million-client sweep's
# machinery (sampler, shard folds, tree resolve, JSON artefact) without
# the full fleet sizes.
scripts/bench.sh -smoke -scale >/dev/null

# Unlearn-harness smoke: the concurrent-unlearning benchmark at CI
# scale (training-during-recovery throughput plus coalesced batches),
# emitting a parseable BENCH_unlearn.json to a temp file.
scripts/bench.sh -smoke -unlearn >/dev/null

# Verify-harness smoke: the forgetting-verification suite at its CI
# smoke size (two reference strategies, small shadow population),
# emitting a parseable BENCH_verify.json to a temp file.
scripts/bench.sh -smoke -verify >/dev/null

# Unlearn-queue smoke: the async service's queue round-trip — submit,
# coalesce, dedup, commit — under the race detector, since the queue's
# whole job is overlapping recovery with live round commits.
go test -race -count=1 -run '^TestQueue' ./internal/unlearn/

# Forgetting-property smoke: retraining must score ≈ chance against
# the membership attack and the paper scheme within epsilon of it,
# under the race detector (the relearn probe runs parallel federated
# rounds).
go test -race -count=1 -run '^TestVerifyForgettingProperty$' ./internal/experiments/

# Storage-tier smoke: the disk spill path must round-trip snapshots
# byte-for-byte, and the packed accumulate kernel must stay
# allocation-free (the recovery loop depends on it per round).
go test -count=1 -run '^TestSpillRoundTrip$' ./internal/history/
go test -count=1 -run '^TestAccumulateIntoAllocs$' ./internal/sign/

for arg in "$@"; do
	case "$arg" in
	-race)
		go test -race ./...
		;;
	-faults)
		go test -race -run 'Fault|Quorum|Corrupt|Cancel|Bootstrap|Legacy|Sentinel' \
			./internal/faults/ ./internal/fl/ ./internal/unlearn/ ./internal/baselines/ ./internal/iov/ .
		;;
	-sim)
		# Scenario smoke: the deterministic simulation harness
		# (invariant checks over a batch of generated schedules) under
		# the race detector — the CI configuration.
		go test -race -count=1 ./internal/simtest/
		# Coverage floors on the packages the paper's guarantees rest
		# on. Floors sit below current coverage (100/91/88 as of the
		# harness PR) so routine changes don't trip them, but a test
		# regression does.
		go test -cover ./internal/sign/ ./internal/history/ ./internal/unlearn/ ./internal/verify/ |
			awk '
			BEGIN { floor["sign"] = 95; floor["history"] = 85; floor["unlearn"] = 80; floor["verify"] = 75 }
			{
				n = split($2, parts, "/"); pkg = parts[n]
				cov = ""
				for (i = 1; i <= NF; i++) if ($i ~ /%/) { cov = $i; sub(/%.*/, "", cov) }
				printf "coverage %-10s %s%%  (floor %s%%)\n", pkg, cov, floor[pkg]
				if (cov == "" || cov + 0 < floor[pkg]) { bad = 1 }
			}
			END { if (bad) { print "coverage floor violated" > "/dev/stderr"; exit 1 } }'
		;;
	*)
		echo "check.sh: unknown flag $arg" >&2
		exit 2
		;;
	esac
done

echo "check: OK"
