// Quickstart: train a small federation, erase one vehicle with
// backtracking, recover the model server-side, and compare against
// retraining from scratch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fuiov"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed    = 42
		nCars   = 10
		rounds  = 150
		lr      = 0.03
		clipL   = 0.05
		deltaTh = 1e-6
	)

	// 1. Synthetic MNIST-style dataset, split into a test set and one
	// private shard per vehicle.
	data := fuiov.SynthDigits(fuiov.DefaultDigits(900, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), nCars)
	if err != nil {
		return err
	}
	clients := make([]*fuiov.Client, nCars)
	for i := range clients {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shards[i]}
	}

	// 2. Federated training. The history store records, per round, the
	// global model and each vehicle's 2-bit gradient direction — all
	// the server ever needs to unlearn later.
	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), deltaTh)
	if err != nil {
		return err
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Store:        store,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(rounds); err != nil {
		return err
	}
	accTrained := fuiov.AccuracyAt(model.Clone(), sim.Params(), test)
	fmt.Printf("trained %d rounds, accuracy %.3f\n", rounds, accTrained)

	// 3. Vehicle 3 invokes its right to be forgotten. Backtrack to its
	// join round, then recover using only the stored history.
	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate:  lr,
		ClipThreshold: clipL,
	})
	if err != nil {
		return err
	}
	res, err := u.Unlearn(3)
	if err != nil {
		return err
	}
	fmt.Printf("backtracked to round %d, recovered %d rounds server-side\n",
		res.BacktrackRound, res.RecoveredRounds)
	fmt.Printf("unlearned accuracy %.3f -> recovered accuracy %.3f\n",
		fuiov.AccuracyAt(model.Clone(), res.Unlearned, test),
		fuiov.AccuracyAt(model.Clone(), res.Params, test))

	// 4. Reference: retraining from scratch without vehicle 3 — the
	// gold standard the recovered model should approach.
	retrained, err := fuiov.Retrain(model, clients, []fuiov.ClientID{3}, fuiov.RetrainConfig{
		LearningRate: lr,
		Rounds:       rounds,
		Seed:         seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("retraining-from-scratch accuracy %.3f\n",
		fuiov.AccuracyAt(model.Clone(), retrained, test))

	// 5. The storage price the server paid for this capability.
	rep := store.Storage()
	fmt.Printf("history: %d B directions vs %d B full gradients (%.1f%% saved)\n",
		rep.DirectionBytes, rep.FullGradientBytes, 100*rep.GradientSavings)
	return nil
}
