// Detect-and-unlearn: the complete defensive loop the paper motivates.
// Malicious vehicles poison training; detectors watching the round
// traffic flag them; the RSU erases every update they contributed and
// recovers the clean model — all from the 2-bit direction history.
//
//	go run ./examples/detectunlearn
package main

import (
	"fmt"
	"log"
	"sort"

	"fuiov"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed   = 17
		nCars  = 12
		rounds = 150
		lr     = 0.03
	)

	data := fuiov.SynthDigits(fuiov.DefaultDigits(1000, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), nCars)
	if err != nil {
		return err
	}

	// Vehicles 2 and 7 poison their shards with the backdoor trigger
	// AND amplify their uploads — a visible model-poisoning signature.
	backdoor := fuiov.DefaultBackdoor()
	malicious := map[int]bool{2: true, 7: true}
	clients := make([]*fuiov.Client, nCars)
	for i := range clients {
		shard := shards[i]
		if malicious[i] {
			shard = backdoor.Poison(shard, fuiov.NewRNG(seed).Split(uint64(i)))
		}
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shard}
	}

	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-2)
	if err != nil {
		return err
	}

	// Both detectors ride along as passive recorders.
	cosine := fuiov.NewCosineDetector()
	consistency := fuiov.NewConsistencyDetector()
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Store:        store,
		Recorders:    []fuiov.Recorder{cosine, consistency},
	})
	if err != nil {
		return err
	}
	if err := sim.Run(rounds); err != nil {
		return err
	}

	eval := model.Clone()
	eval.SetParamVector(sim.Params())
	fmt.Printf("poisoned training done: accuracy %.3f, backdoor success %.1f%%\n",
		fuiov.Accuracy(eval, test), 100*backdoor.SuccessRate(eval, test))

	// Union of both detectors' suspicions.
	suspects := map[fuiov.ClientID]bool{}
	for _, id := range cosine.Suspects() {
		suspects[id] = true
	}
	for _, id := range consistency.Suspects() {
		suspects[id] = true
	}
	if len(suspects) == 0 {
		fmt.Println("detectors found nothing; consider lowering MinGap")
		return nil
	}
	forgotten := make([]fuiov.ClientID, 0, len(suspects))
	for id := range suspects {
		forgotten = append(forgotten, id)
	}
	sort.Slice(forgotten, func(i, j int) bool { return forgotten[i] < forgotten[j] })
	fmt.Printf("detectors flagged vehicles %v (ground truth: 2 and 7)\n", forgotten)

	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate:  lr,
		ClipThreshold: 0.05,
	})
	if err != nil {
		return err
	}
	res, err := u.Unlearn(forgotten...)
	if err != nil {
		return err
	}
	eval.SetParamVector(res.Params)
	fmt.Printf("after unlearn+recover: accuracy %.3f, backdoor success %.1f%%\n",
		fuiov.Accuracy(eval, test), 100*backdoor.SuccessRate(eval, test))

	// Reference: a model that never saw the attackers. Its "success
	// rate" is the floor any trigger achieves on an imperfect model.
	retrained, err := fuiov.Retrain(model, clients, forgotten, fuiov.RetrainConfig{
		LearningRate: lr, Rounds: rounds, Seed: seed,
	})
	if err != nil {
		return err
	}
	eval.SetParamVector(retrained)
	fmt.Printf("clean-retrain reference: accuracy %.3f, backdoor success %.1f%%\n",
		fuiov.Accuracy(eval, test), 100*backdoor.SuccessRate(eval, test))
	return nil
}
