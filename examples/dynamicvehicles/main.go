// Dynamic vehicles: clients join and leave federated learning
// mid-training — the IoV property that breaks FedRecover/FedEraser.
// A vehicle that joined at round 40 and left at round 100 is erased
// afterwards, even though it is no longer reachable.
//
//	go run ./examples/dynamicvehicles
package main

import (
	"fmt"
	"log"

	"fuiov"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed   = 5
		nCars  = 12
		rounds = 150
		lr     = 0.03
	)

	data := fuiov.SynthDigits(fuiov.DefaultDigits(1000, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), nCars)
	if err != nil {
		return err
	}

	// A deliberately dynamic membership plan:
	//   vehicles 0-7: steady participants from round 0
	//   vehicle  8:  joins at round 40, leaves (drives away) at 100
	//   vehicle  9:  joins at round 20, stays
	//   vehicles 10, 11: join at rounds 60 and 90
	const latecomer = fuiov.ClientID(8)
	schedule := fuiov.IntervalSchedule{
		8:  {Join: 40, Leave: 100},
		9:  {Join: 20, Leave: -1},
		10: {Join: 60, Leave: -1},
		11: {Join: 90, Leave: -1},
	}
	clients := make([]*fuiov.Client, nCars)
	for i := range clients {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shards[i]}
		if _, ok := schedule[fuiov.ClientID(i)]; !ok {
			schedule[fuiov.ClientID(i)] = fuiov.Interval{Join: 0, Leave: -1}
		}
	}

	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-6)
	if err != nil {
		return err
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Schedule:     schedule,
		Store:        store,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(rounds); err != nil {
		return err
	}
	store.NoteLeave(latecomer, 100)
	accTrained := fuiov.AccuracyAt(model.Clone(), sim.Params(), test)
	fmt.Printf("trained with dynamic membership: accuracy %.3f\n", accTrained)

	// Vehicle 8 is gone — it left at round 100 and cannot help with
	// recovery. The reinitialise-and-replay methods would now need it
	// online; backtracking does not.
	join, err := store.JoinRound(latecomer)
	if err != nil {
		return err
	}
	fmt.Printf("erasing vehicle %d (participated rounds %d-99, now offline)\n",
		latecomer, join)

	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate:  lr,
		ClipThreshold: 0.05,
	})
	if err != nil {
		return err
	}
	res, err := u.Unlearn(latecomer)
	if err != nil {
		return err
	}
	fmt.Printf("backtracked to round %d — rounds 0-%d of training survive\n",
		res.BacktrackRound, res.BacktrackRound-1)
	fmt.Printf("unlearned accuracy %.3f -> recovered accuracy %.3f (trained %.3f)\n",
		fuiov.AccuracyAt(model.Clone(), res.Unlearned, test),
		fuiov.AccuracyAt(model.Clone(), res.Params, test),
		accTrained)
	fmt.Printf("%d remaining clients were bootstrapped from pre-join history\n",
		res.BootstrappedClients)
	return nil
}
