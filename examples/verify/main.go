// Forgetting verification: did unlearning actually make the model
// forget? Bit-identity to the retrained weights is one answer; this
// example measures forgetting directly. A backdoored federation
// trains, two strategies erase the attackers, and the verification
// suite scores each unlearned model with a shadow-model membership
// attack, the trigger's retained success rate, and how fast continued
// training re-memorizes the forgotten data.
//
//	go run ./examples/verify
package main

import (
	"context"
	"fmt"
	"log"

	"fuiov"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed   = 17
		nCars  = 12
		rounds = 150
		lr     = 0.03
	)
	ctx := context.Background()

	data := fuiov.SynthDigits(fuiov.DefaultDigits(1000, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), nCars)
	if err != nil {
		return err
	}

	// Vehicles 2 and 7 stamp the backdoor trigger on their shards.
	backdoor := fuiov.DefaultBackdoor()
	forgotten := []fuiov.ClientID{2, 7}
	poisoned := map[fuiov.ClientID]bool{2: true, 7: true}
	clients := make([]*fuiov.Client, nCars)
	for i := range clients {
		shard := shards[i]
		if poisoned[fuiov.ClientID(i)] {
			shard = backdoor.Poison(shard, fuiov.NewRNG(seed).Split(uint64(i)))
		}
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shard}
	}

	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-2)
	if err != nil {
		return err
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Store:        store,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(rounds); err != nil {
		return err
	}
	before := sim.Params()

	// One suite — shadow models and membership attack fitted once —
	// scores every strategy.
	suite, err := fuiov.NewVerifySuite(ctx, fuiov.VerifyTarget{
		Template:     model,
		Clients:      clients,
		Forgotten:    forgotten,
		Test:         test,
		Before:       before,
		LearningRate: lr,
		Seed:         seed,
		Backdoor:     backdoor,
	}, fuiov.VerifyConfig{})
	if err != nil {
		return err
	}

	req := fuiov.UnlearnRequest{
		Forgotten:    forgotten,
		Store:        store,
		Template:     model,
		Clients:      clients,
		FinalParams:  before,
		LearningRate: lr,
		Rounds:       rounds,
		Seed:         seed,
	}
	for _, name := range []string{"paper", "retrain"} {
		res, err := fuiov.Unlearn(ctx, name, req)
		if err != nil {
			return err
		}
		score, err := suite.Score(ctx, res.Params)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  MIA advantage     %.3f → %.3f (0 ≈ forgotten)\n",
			score.MIAAdvantageBefore, score.MIAAdvantageAfter)
		if score.BackdoorBefore != nil && score.BackdoorAfter != nil {
			fmt.Printf("  backdoor success  %.1f%% → %.1f%%\n",
				100**score.BackdoorBefore, 100**score.BackdoorAfter)
		}
		switch {
		case score.RelearnRounds < 0:
			fmt.Printf("  relearn           not re-memorized within the cap\n")
		default:
			fmt.Printf("  relearn           re-memorized after %d rounds\n", score.RelearnRounds)
		}
	}
	return nil
}
