// Poison recovery: 20% of vehicles mount a backdoor attack; once they
// are detected, the RSU erases every update they ever contributed and
// recovers the clean model — the Fig. 1 scenario of the paper.
//
//	go run ./examples/poisonrecovery
package main

import (
	"fmt"
	"log"

	"fuiov"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed   = 11
		nCars  = 10
		rounds = 150
		lr     = 0.03
		joinF  = 2 // attackers join federated learning at round 2
	)

	data := fuiov.SynthDigits(fuiov.DefaultDigits(900, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), nCars)
	if err != nil {
		return err
	}

	// Vehicles 0 and 1 are malicious: they stamp a 3x3 trigger on half
	// their samples and relabel them to class 2.
	backdoor := fuiov.DefaultBackdoor()
	attackers := []fuiov.ClientID{0, 1}
	schedule := fuiov.IntervalSchedule{}
	clients := make([]*fuiov.Client, nCars)
	for i := range clients {
		shard := shards[i]
		join := 0
		if i < len(attackers) {
			shard = backdoor.Poison(shard, fuiov.NewRNG(seed).Split(uint64(i)))
			join = joinF
		}
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shard}
		schedule[fuiov.ClientID(i)] = fuiov.Interval{Join: join, Leave: -1}
	}

	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-6)
	if err != nil {
		return err
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Schedule:     schedule,
		Store:        store,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(rounds); err != nil {
		return err
	}

	eval := model.Clone()
	eval.SetParamVector(sim.Params())
	fmt.Printf("poisoned model:   accuracy %.3f, attack success rate %.1f%%\n",
		fuiov.Accuracy(eval, test), 100*backdoor.SuccessRate(eval, test))

	// The detector (out of scope here, cf. FLDetector et al.) flags
	// the attackers; the RSU erases them entirely.
	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate:  lr,
		ClipThreshold: 0.05,
	})
	if err != nil {
		return err
	}
	res, err := u.Unlearn(attackers...)
	if err != nil {
		return err
	}

	eval.SetParamVector(res.Unlearned)
	fmt.Printf("after forgetting: accuracy %.3f, attack success rate %.1f%%\n",
		fuiov.Accuracy(eval, test), 100*backdoor.SuccessRate(eval, test))

	eval.SetParamVector(res.Params)
	fmt.Printf("after recovery:   accuracy %.3f, attack success rate %.1f%%\n",
		fuiov.Accuracy(eval, test), 100*backdoor.SuccessRate(eval, test))
	fmt.Printf("(backtracked to round %d; recovery ran without any client)\n",
		res.BacktrackRound)
	return nil
}
