// Fault tolerance: train a federation whose vehicles crash, straggle
// and corrupt uploads — the IoV reality the paper motivates with — and
// watch the round engine cope: per-client deadlines, bounded retries
// with backoff, upload validation and quorum-based degradation keep
// training converging, absentees are recorded as non-participants so
// unlearning stays consistent, and the whole pipeline honours context
// cancellation.
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"fuiov"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed   = 91
		nCars  = 12
		rounds = 140
		lr     = 0.03
	)

	data := fuiov.SynthDigits(fuiov.DefaultDigits(960, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), nCars)
	if err != nil {
		return err
	}
	clients := make([]*fuiov.Client, nCars)
	for i := range clients {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shards[i]}
	}

	// -- 1. A hostile radio environment -------------------------------
	// The default spec crashes 30% of attempts; vehicle 3 is flaky on a
	// fixed period, vehicle 4 corrupts half its uploads, vehicle 5 is a
	// chronic straggler whose latency always blows the deadline.
	plan := fuiov.NewFaultPlan(seed, fuiov.FaultSpec{CrashProb: 0.3}).
		SetClient(3, fuiov.FaultSpec{FlakyEvery: 4}).
		SetClient(4, fuiov.FaultSpec{CorruptProb: 0.5}).
		SetClient(5, fuiov.FaultSpec{DelayMin: 400 * time.Millisecond, DelayMax: 900 * time.Millisecond})
	policy := &fuiov.FaultPolicy{
		ClientTimeout: 250 * time.Millisecond,
		MaxRetries:    2,
		Quorum:        0.5,
	}

	// Vehicle 1 (erased later) joins at round 2; vehicle 2 joins at
	// round 1, so its pre-join pair window has a direction gap at round
	// 0 that only the client-assisted bootstrap can fill.
	sched := fuiov.IntervalSchedule{}
	for i := 0; i < nCars; i++ {
		sched[fuiov.ClientID(i)] = fuiov.Interval{Join: 0, Leave: -1}
	}
	sched[1] = fuiov.Interval{Join: 2, Leave: -1}
	sched[2] = fuiov.Interval{Join: 1, Leave: -1}

	reg := fuiov.NewTelemetry()
	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-2)
	if err != nil {
		return err
	}
	store.SetTelemetry(reg)
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Schedule:     sched,
		Store:        store,
		Telemetry:    reg,
		Faults:       plan,
		FaultPolicy:  policy,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(rounds); err != nil {
		return err
	}
	fmt.Printf("trained %d rounds under 30%% crash faults: accuracy %.3f\n",
		rounds, fuiov.AccuracyAt(model.Clone(), sim.Params(), test))

	fmt.Println("\n-- fault counters --")
	for _, c := range reg.Snapshot().Counters {
		if strings.HasPrefix(c.Name, "fl.") && c.Value > 0 {
			fmt.Printf("%-24s %d\n", c.Name, c.Value)
		}
	}

	// -- 2. Quorum protects against garbage rounds --------------------
	// Demand that EVERY scheduled vehicle responds and the same fault
	// plan sinks the round: the engine refuses to aggregate, returns a
	// typed sentinel, and does not advance the round clock.
	strict := *policy
	strict.Quorum = 1
	model2 := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model2.Init(fuiov.NewRNG(seed))
	sim2, err := fuiov.NewSimulation(model2, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Faults:       plan,
		FaultPolicy:  &strict,
	})
	if err != nil {
		return err
	}
	err = sim2.RunRound()
	fmt.Printf("\nquorum 100%%: errors.Is(err, ErrQuorumNotReached) = %v (round clock still %d)\n",
		errors.Is(err, fuiov.ErrQuorumNotReached), sim2.Round())

	// -- 3. Cancellation stops at the next round boundary -------------
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = sim.RunContext(ctx, 10)
	fmt.Printf("cancelled context: errors.Is(err, context.Canceled) = %v\n",
		errors.Is(err, context.Canceled))

	// -- 4. Unlearning survives offline clients -----------------------
	// Erase vehicle 1. Vehicle 2's pre-join direction gap asks for the
	// client-assisted bootstrap, but every dispatch fails (the vehicle
	// left coverage); after the retry budget the scheme falls back to
	// the paper's offline path and recovery still completes.
	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate:  lr,
		ClipThreshold: 0.05,
		Telemetry:     reg,
		OnlineBootstrap: func(id fuiov.ClientID, round int, params []float64) ([]float64, error) {
			return nil, fmt.Errorf("vehicle %d out of coverage", id)
		},
		BootstrapRetries: 2,
	})
	if err != nil {
		return err
	}
	res, err := u.UnlearnContext(context.Background(), 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nunlearned vehicle 1: backtracked to round %d, recovered %d rounds\n",
		res.BacktrackRound, res.RecoveredRounds)
	fmt.Printf("recovered accuracy %.3f (no client participation needed)\n",
		fuiov.AccuracyAt(model.Clone(), res.Params, test))
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "unlearn.bootstrap") {
			fmt.Printf("%-28s %d\n", c.Name, c.Value)
		}
	}
	return nil
}
