// Storage savings: run the same training twice — once recording full
// float64 gradients (FedRecover's regime) and once recording only
// 2-bit directions — then compare the server's footprint and verify
// that unlearning still works from the compressed history.
//
//	go run ./examples/storagesavings
package main

import (
	"bytes"
	"fmt"
	"log"

	"fuiov"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed   = 21
		nCars  = 10
		rounds = 150
		lr     = 0.03
	)

	data := fuiov.SynthDigits(fuiov.DefaultDigits(900, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), nCars)
	if err != nil {
		return err
	}
	clients := make([]*fuiov.Client, nCars)
	for i := range clients {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shards[i]}
	}
	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))

	// Record both representations in one training run.
	store, err := fuiov.NewStore(model.NumParams(), 1e-6)
	if err != nil {
		return err
	}
	full, err := fuiov.NewFullHistory(model.NumParams())
	if err != nil {
		return err
	}
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Store:        store,
		Recorders:    []fuiov.Recorder{full},
	})
	if err != nil {
		return err
	}
	if err := sim.Run(rounds); err != nil {
		return err
	}

	rep := store.Storage()
	fmt.Printf("model: %d parameters, %d vehicles, %d rounds\n",
		model.NumParams(), nCars, rounds)
	fmt.Printf("full float64 gradients: %10d bytes  (FedRecover/FedEraser regime)\n",
		full.StorageBytes())
	fmt.Printf("2-bit directions:       %10d bytes  (this paper)\n", rep.DirectionBytes)
	fmt.Printf("model snapshots:        %10d bytes  (needed by both)\n", rep.ModelBytes)
	fmt.Printf("gradient storage saved: %9.1f%%   (paper claims ~95%%)\n",
		100*rep.GradientSavings)

	// The compressed history is also what the persistence layer
	// writes; show the on-disk footprint.
	var snapshot bytes.Buffer
	if err := store.Save(&snapshot); err != nil {
		return err
	}
	fmt.Printf("serialized history snapshot: %d bytes\n", snapshot.Len())
	restored, err := fuiov.LoadStore(&snapshot)
	if err != nil {
		return err
	}

	// And unlearning works from the restored, compressed history.
	u, err := fuiov.NewUnlearner(restored, fuiov.UnlearnConfig{
		LearningRate:  lr,
		ClipThreshold: 0.05,
	})
	if err != nil {
		return err
	}
	res, err := u.Unlearn(4)
	if err != nil {
		return err
	}
	fmt.Printf("unlearned vehicle 4 from the restored snapshot: recovered accuracy %.3f\n",
		fuiov.AccuracyAt(model.Clone(), res.Params, test))
	return nil
}
