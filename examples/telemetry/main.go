// Telemetry: attach one metrics registry to the whole pipeline —
// training simulation, history store and unlearner — then read the
// paper's claims straight off the live instruments: per-phase round
// timings, the ~97% storage-saving gauge (§I claims ~95% vs float32),
// and the recovery-phase breakdown, all without touching the result
// structs.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"os"

	"fuiov"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed   = 33
		nCars  = 10
		rounds = 120
		lr     = 0.03
	)

	data := fuiov.SynthDigits(fuiov.DefaultDigits(900, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), nCars)
	if err != nil {
		return err
	}
	clients := make([]*fuiov.Client, nCars)
	for i := range clients {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shards[i]}
	}

	// One registry observes everything. The stream observer prints a
	// structured line per round; drop SetObserver to keep only the
	// aggregate counters/timers.
	reg := fuiov.NewTelemetry()

	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-2)
	if err != nil {
		return err
	}
	store.SetTelemetry(reg)
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Store:        store,
		Telemetry:    reg,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(rounds); err != nil {
		return err
	}
	fmt.Printf("trained %d rounds, accuracy %.3f\n",
		rounds, fuiov.AccuracyAt(model.Clone(), sim.Params(), test))

	// The paper's §I storage claim, read from the live gauge the store
	// updates on every recorded round: 2-bit directions vs 64-bit
	// floats saves ~97% (≈95% against float32 uploads).
	saving := reg.Snapshot()
	fmt.Println("\n-- storage (live gauges) --")
	for _, g := range saving.Gauges {
		fmt.Printf("%-32s %.4f\n", g.Name, g.Value)
	}
	report := store.Storage()
	fmt.Printf("gauge vs Storage() report: %.4f vs %.4f (must agree)\n",
		reg.Snapshot().Gauges[0].Value, report.GradientSavings)
	if report.GradientSavings < 0.9 {
		return fmt.Errorf("expected ~95%%+ storage saving, gauge reads %.1f%%",
			100*report.GradientSavings)
	}

	// Unlearn vehicle 3 through the same registry: backtracking depth,
	// per-round recovery time and clip activations accrue alongside
	// the training metrics.
	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate:  lr,
		ClipThreshold: 0.05,
		Telemetry:     reg,
	})
	if err != nil {
		return err
	}
	res, err := u.Unlearn(3)
	if err != nil {
		return err
	}
	fmt.Printf("\nforgot vehicle 3: backtracked to round %d, recovered %d rounds, accuracy %.3f\n",
		res.BacktrackRound, res.RecoveredRounds,
		fuiov.AccuracyAt(model.Clone(), res.Params, test))

	fmt.Println("\n-- full metrics snapshot --")
	return reg.Snapshot().WriteText(os.Stdout)
}
