module fuiov

go 1.22
