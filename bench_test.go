package fuiov_test

// Benchmark harness: one benchmark per table and figure of the paper
// (DESIGN.md §5). Each benchmark regenerates its experiment and logs
// the same rows the paper reports, so
//
//	go test -bench=. -benchmem
//
// both measures the cost of the pipeline and prints the reproduced
// results. By default experiments run at CI scale; set
//
//	FUIOV_SCALE=paper go test -bench=. -benchtime=1x -timeout=2h
//
// for the paper-scale configuration (100 vehicles, 100 rounds, CNNs) —
// about 20 s per training run on a 2-core machine.
//
// Micro-benchmarks for the core primitives (direction compression,
// L-BFGS Hessian-vector products, one federated round, one recovery
// round) follow the experiment benchmarks.

import (
	"os"
	"testing"

	"fuiov/internal/dataset"
	"fuiov/internal/experiments"
	"fuiov/internal/fl"
	"fuiov/internal/history"
	"fuiov/internal/lbfgs"
	"fuiov/internal/nn"
	"fuiov/internal/rng"
	"fuiov/internal/sign"
	"fuiov/internal/unlearn"
)

const benchSeed = 42

func benchScale() experiments.Scale {
	if os.Getenv("FUIOV_SCALE") == "paper" {
		return experiments.PaperScale()
	}
	return experiments.CIScale()
}

// BenchmarkTable1 regenerates Table I (accuracy of Retraining,
// FedRecover, FedRecovery and Ours on both datasets).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatTable1(rows))
		}
	}
}

// BenchmarkFigure1 regenerates Fig. 1 (attack success rate before
// unlearning, after forgetting, after recovery).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatFigure1(rows))
		}
	}
}

// BenchmarkFigure2 regenerates Fig. 2 (accuracy vs clip threshold L).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure2(benchScale(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatSweep(
				"Fig. 2 — accuracy vs clip threshold L", "L", points))
		}
	}
}

// BenchmarkFigure3 regenerates Fig. 3 (accuracy vs direction
// threshold δ).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure3(benchScale(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatSweep(
				"Fig. 3 — accuracy vs direction threshold δ", "delta", points))
		}
	}
}

// BenchmarkStorage regenerates the §I/§VI storage-savings claim.
func BenchmarkStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Storage(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatStorage(rows))
			b.ReportMetric(100*rows[0].MeasuredSavings, "%saved")
		}
	}
}

// BenchmarkCostTable regenerates the recovery cost comparison (E6 in
// DESIGN.md): client compute/communication and server gradient
// storage per method.
func BenchmarkCostTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CostTable(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatCost(rows))
		}
	}
}

// BenchmarkAblationClipping regenerates ablation A1 (clipping mode).
func BenchmarkAblationClipping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationClipping(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatAblation("A1 — clipping mode", rows))
		}
	}
}

// BenchmarkAblationRefresh regenerates ablation A2 (pair refresh
// period).
func BenchmarkAblationRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationRefresh(benchScale(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatAblation("A2 — pair refresh period", rows))
		}
	}
}

// BenchmarkAblationBootstrap regenerates ablation A3 (pre-join
// L-BFGS bootstrap).
func BenchmarkAblationBootstrap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBootstrap(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatAblation("A3 — L-BFGS bootstrap", rows))
		}
	}
}

// BenchmarkAblationHeterogeneity regenerates ablation A4 (non-IID
// client data).
func BenchmarkAblationHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationHeterogeneity(benchScale(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", experiments.FormatAblation("A4 — client heterogeneity", rows))
		}
	}
}

// ---- Micro-benchmarks ----

// BenchmarkSignCompress measures 2-bit direction compression of one
// model-sized gradient.
func BenchmarkSignCompress(b *testing.B) {
	r := rng.New(1)
	g := make([]float64, 100_000)
	for i := range g {
		g[i] = r.NormalScaled(0, 0.01)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sign.Compress(g, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(g) * 8))
}

// BenchmarkSignDecompress measures direction expansion.
func BenchmarkSignDecompress(b *testing.B) {
	r := rng.New(2)
	g := make([]float64, 100_000)
	for i := range g {
		g[i] = r.NormalScaled(0, 0.01)
	}
	d, err := sign.Compress(g, 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, len(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DenseInto(dst)
	}
}

// BenchmarkLBFGSHVP measures one compact Hessian-vector product at a
// realistic model dimension.
func BenchmarkLBFGSHVP(b *testing.B) {
	r := rng.New(3)
	const dim = 10_000
	mk := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = r.Normal()
		}
		return v
	}
	dW := [][]float64{mk(), mk()}
	dG := make([][]float64, 2)
	for i := range dW {
		dG[i] = make([]float64, dim)
		for j := range dG[i] {
			dG[i][j] = 2*dW[i][j] + 0.1*r.Normal()
		}
	}
	approx, err := lbfgs.New(dW, dG)
	if err != nil {
		b.Fatal(err)
	}
	v := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.HVP(v); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFederation builds a small trained federation for round-level
// benchmarks.
func benchFederation(b *testing.B) (*fl.Simulation, *history.Store) {
	b.Helper()
	d := dataset.SynthDigits(dataset.DefaultDigits(600, 7))
	r := rng.New(7)
	train, _ := d.Split(r, 0.9)
	shards, err := dataset.PartitionIID(train, r, 10)
	if err != nil {
		b.Fatal(err)
	}
	clients := make([]*fl.Client, len(shards))
	for i := range clients {
		clients[i] = &fl.Client{ID: history.ClientID(i), Data: shards[i], BatchSize: 32}
	}
	net := nn.NewDigitsCNN(12, 10)
	net.Init(r.Split(1))
	store, err := history.NewStore(net.NumParams(), 1e-2)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := fl.NewSimulation(net, clients, fl.Config{
		LearningRate: 0.05, Seed: 7, Store: store,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sim, store
}

// BenchmarkFederatedRound measures one synchronous CNN training round
// (10 clients, batch 32) including history recording.
func BenchmarkFederatedRound(b *testing.B) {
	sim, _ := benchFederation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnlearn measures a complete backtrack + recovery over a
// 30-round history (10 clients, CNN).
func BenchmarkUnlearn(b *testing.B) {
	sim, store := benchFederation(b)
	if err := sim.Run(30); err != nil {
		b.Fatal(err)
	}
	u, err := unlearn.New(store, unlearn.Config{LearningRate: 0.05, ClipThreshold: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Unlearn(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryRound measures the recovery hot loop: one complete
// backtrack + recovery (≈27 recovered rounds × 9 remaining clients)
// over a 30-round CNN history, with allocation accounting. The
// per-client-round estimate cost is allocs/op divided by the
// client-round count logged below.
func BenchmarkRecoveryRound(b *testing.B) {
	sim, store := benchFederation(b)
	if err := sim.Run(30); err != nil {
		b.Fatal(err)
	}
	u, err := unlearn.New(store, unlearn.Config{LearningRate: 0.05, ClipThreshold: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := u.Unlearn(3)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.RecoveredRounds
	}
	b.ReportMetric(float64(rounds), "rounds/op")
}

// BenchmarkHistoryRecord measures recording one round of 100 client
// gradients (3k-parameter model) with direction compression.
func BenchmarkHistoryRecord(b *testing.B) {
	const dim = 3000
	r := rng.New(9)
	grads := make(map[history.ClientID][]float64, 100)
	for c := 0; c < 100; c++ {
		g := make([]float64, dim)
		for i := range g {
			g[i] = r.NormalScaled(0, 0.01)
		}
		grads[history.ClientID(c)] = g
	}
	model := make([]float64, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := history.NewStore(dim, 1e-6)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.RecordRound(0, model, grads, nil); err != nil {
			b.Fatal(err)
		}
	}
}
