package fuiov_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fuiov"
)

// TestFaultTolerantPipeline is the PR's acceptance scenario driven
// entirely through the facade: with ~30% of client attempts crashing
// or timing out per round under a seeded plan, training completes via
// quorum (no hang), converges on digits, and a subsequent Unlearn
// succeeds even though every online-bootstrap dispatch fails (the
// offline fallback).
func TestFaultTolerantPipeline(t *testing.T) {
	const (
		seed   = 77
		nCars  = 10
		rounds = 100
		lr     = 0.04
	)
	data := fuiov.SynthDigits(fuiov.DefaultDigits(900, seed))
	train, test := data.Split(fuiov.NewRNG(seed), 0.85)
	shards, err := fuiov.PartitionIID(train, fuiov.NewRNG(seed), nCars)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fuiov.Client, nCars)
	for i := range clients {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shards[i], BatchSize: 32}
	}
	// Crashes plus stragglers: ~15% of attempts crash outright, and
	// injected latencies above the deadline time out about as often.
	plan := fuiov.NewFaultPlan(seed, fuiov.FaultSpec{
		CrashProb: 0.15,
		DelayMin:  0,
		DelayMax:  350 * time.Millisecond,
	})
	model := fuiov.NewMLP(data.Dims.Size(), 24, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	store, err := fuiov.NewStore(model.NumParams(), 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	sched := fuiov.IntervalSchedule{}
	for i := 0; i < nCars; i++ {
		sched[fuiov.ClientID(i)] = fuiov.Interval{Join: 0, Leave: -1}
	}
	sched[1] = fuiov.Interval{Join: 2, Leave: -1} // the client to erase
	sched[2] = fuiov.Interval{Join: 1, Leave: -1} // pre-join gap → bootstrap
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: lr,
		Seed:         seed,
		Schedule:     sched,
		Store:        store,
		Faults:       plan,
		FaultPolicy: &fuiov.FaultPolicy{
			ClientTimeout: 300 * time.Millisecond,
			MaxRetries:    2,
			Quorum:        0.3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sim.Run(rounds) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("faulty training: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("training hung under faults")
	}
	if acc := fuiov.AccuracyAt(model.Clone(), sim.Params(), test); acc < 0.55 {
		t.Errorf("trained accuracy %.3f under faults, want >= 0.55", acc)
	}

	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{
		LearningRate:  lr,
		ClipThreshold: 0.05,
		OnlineBootstrap: func(id fuiov.ClientID, round int, params []float64) ([]float64, error) {
			return nil, fmt.Errorf("vehicle %d out of coverage", id)
		},
		BootstrapRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.UnlearnContext(context.Background(), 1)
	if err != nil {
		t.Fatalf("unlearn after faulty training: %v", err)
	}
	if res.BacktrackRound != 2 {
		t.Errorf("backtrack round %d, want 2", res.BacktrackRound)
	}
	if acc := fuiov.AccuracyAt(model.Clone(), res.Params, test); acc < 0.5 {
		t.Errorf("recovered accuracy %.3f, want >= 0.5", acc)
	}
}

// TestFacadeSentinelsAndContext exercises the re-exported sentinels
// and the ctx-first API surface through the facade.
func TestFacadeSentinelsAndContext(t *testing.T) {
	const seed = 83
	data := fuiov.SynthDigits(fuiov.DefaultDigits(300, seed))
	shards, err := fuiov.PartitionIID(data, fuiov.NewRNG(seed), 4)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fuiov.Client, 4)
	for i := range clients {
		clients[i] = &fuiov.Client{ID: fuiov.ClientID(i), Data: shards[i]}
	}
	model := fuiov.NewMLP(data.Dims.Size(), 16, data.Classes)
	model.Init(fuiov.NewRNG(seed))
	allCrash := fuiov.FaultFunc(func(fuiov.ClientID, int, int) fuiov.FaultOutcome {
		return fuiov.FaultOutcome{Crash: true}
	})
	sim, err := fuiov.NewSimulation(model, clients, fuiov.SimConfig{
		LearningRate: 0.05,
		Seed:         seed,
		Faults:       allCrash,
		FaultPolicy:  &fuiov.FaultPolicy{Quorum: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunRound(); !errors.Is(err, fuiov.ErrQuorumNotReached) {
		t.Fatalf("err = %v, want ErrQuorumNotReached", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sim.RunContext(ctx, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if _, err := fuiov.RetrainContext(ctx, model, clients, nil, fuiov.RetrainConfig{
		LearningRate: 0.05, Rounds: 3, Seed: seed,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RetrainContext err = %v, want context.Canceled", err)
	}

	store, err := fuiov.NewStore(model.NumParams(), 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	u, err := fuiov.NewUnlearner(store, fuiov.UnlearnConfig{LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Unlearn(0); !errors.Is(err, fuiov.ErrNoHistory) {
		t.Fatalf("empty store err = %v, want ErrNoHistory", err)
	}
}
